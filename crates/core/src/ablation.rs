//! Ablation variants of Table IV.
//!
//! Every variant is a re-configuration of the main trainer or of the
//! two-stage pipeline; this module names them and builds the corresponding
//! rule sets / posterior modes so the bench harness and the tests construct
//! exactly the variants the paper evaluates.

use crate::distill::TaskRules;
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_logic::rules::ner_transition::{ner_bad_rules, ner_transition_rules};
use lncl_logic::rules::sentiment_but::SentimentContrastRule;

/// The Table-IV ablation variants (plus the two full models for reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// `MV-Rule`: q_a frozen to the majority-voting estimate, rules kept.
    MvRule,
    /// `GLAD-Rule`: q_a frozen to the GLAD estimate (AggNet estimate on the
    /// NER dataset, where GLAD is not applicable), rules kept.
    GladRule,
    /// `w/o-Rule`: iterative posterior, no rules (equivalent to AggNet).
    WithoutRule,
    /// `MV-t`: the plain MV-Classifier evaluated with the teacher output.
    MvTeacher,
    /// `our-other-rules-*`: the deliberately weaker rules ("however" /
    /// single-transition assumption).
    OtherRules,
    /// The full Logic-LNCL model (student / teacher chosen at prediction
    /// time).
    Full,
}

impl AblationVariant {
    /// Display name matching Table IV.
    pub fn name(&self) -> &'static str {
        match self {
            AblationVariant::MvRule => "MV-Rule",
            AblationVariant::GladRule => "GLAD-Rule",
            AblationVariant::WithoutRule => "w/o-Rule",
            AblationVariant::MvTeacher => "MV-t",
            AblationVariant::OtherRules => "our-other-rules",
            AblationVariant::Full => "Logic-LNCL",
        }
    }

    /// All variants in table order.
    pub fn all() -> [AblationVariant; 6] {
        [
            AblationVariant::MvRule,
            AblationVariant::GladRule,
            AblationVariant::WithoutRule,
            AblationVariant::MvTeacher,
            AblationVariant::OtherRules,
            AblationVariant::Full,
        ]
    }

    /// Whether this variant freezes `q_a` to an external truth estimate.
    pub fn uses_fixed_posterior(&self) -> bool {
        matches!(self, AblationVariant::MvRule | AblationVariant::GladRule)
    }
}

/// Builds the paper's task rules for a dataset (the *A-but-B* rule for
/// sentiment, the Eq. 18/19 transition rules for NER).
pub fn paper_rules(dataset: &CrowdDataset) -> TaskRules {
    match dataset.task {
        TaskKind::Classification => {
            let but =
                dataset.but_token.expect("classification dataset must expose a 'but' token for the contrast rule");
            TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(but))])
        }
        TaskKind::SequenceTagging => TaskRules::Sequence(ner_transition_rules(0.8, 0.2)),
    }
}

/// Builds the "other rules" of the ablation: the weaker "however" contrast
/// rule for sentiment, and the unrealistic single-transition rule for NER.
pub fn other_rules(dataset: &CrowdDataset) -> TaskRules {
    match dataset.task {
        TaskKind::Classification => {
            let however = dataset
                .however_token
                .expect("classification dataset must expose a 'however' token for the ablation rule");
            TaskRules::Classification(vec![Box::new(SentimentContrastRule::however_rule(however))])
        }
        TaskKind::SequenceTagging => TaskRules::Sequence(ner_bad_rules()),
    }
}

/// The rules a given ablation variant trains with.
pub fn rules_for(variant: AblationVariant, dataset: &CrowdDataset) -> TaskRules {
    match variant {
        AblationVariant::WithoutRule | AblationVariant::MvTeacher => TaskRules::None,
        AblationVariant::OtherRules => other_rules(dataset),
        _ => paper_rules(dataset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};

    #[test]
    fn names_cover_table_four() {
        let names: Vec<&str> = AblationVariant::all().iter().map(|v| v.name()).collect();
        assert!(names.contains(&"MV-Rule"));
        assert!(names.contains(&"w/o-Rule"));
        assert!(names.contains(&"our-other-rules"));
    }

    #[test]
    fn fixed_posterior_flags() {
        assert!(AblationVariant::MvRule.uses_fixed_posterior());
        assert!(AblationVariant::GladRule.uses_fixed_posterior());
        assert!(!AblationVariant::Full.uses_fixed_posterior());
    }

    #[test]
    fn sentiment_rules_use_the_right_tokens() {
        let data = generate_sentiment(&SentimentDatasetConfig::tiny());
        match paper_rules(&data) {
            TaskRules::Classification(rules) => assert_eq!(rules[0].name(), "A-but-B"),
            _ => panic!("expected classification rules"),
        }
        match other_rules(&data) {
            TaskRules::Classification(rules) => assert_eq!(rules[0].name(), "A-however-B"),
            _ => panic!("expected classification rules"),
        }
    }

    #[test]
    fn ner_rules_are_transition_sets() {
        let data = generate_ner(&NerDatasetConfig::tiny());
        match paper_rules(&data) {
            TaskRules::Sequence(set) => assert_eq!(set.num_classes(), 9),
            _ => panic!("expected sequence rules"),
        }
        match rules_for(AblationVariant::OtherRules, &data) {
            TaskRules::Sequence(set) => assert!(set.name.contains("bad")),
            _ => panic!("expected sequence rules"),
        }
        assert!(rules_for(AblationVariant::WithoutRule, &data).is_none());
    }
}
