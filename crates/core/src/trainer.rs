//! The Logic-LNCL trainer — Algorithm 1 of the paper.
//!
//! The trainer is generic over the classifier architecture (anything
//! implementing [`InstanceClassifier`]), which is how one implementation
//! covers both the sentiment CNN and the NER tagger, and — by switching the
//! attached [`TaskRules`] and [`PosteriorMode`] — also every EM baseline and
//! ablation variant of Tables II–IV:
//!
//! | paper method           | trainer configuration                                  |
//! |------------------------|--------------------------------------------------------|
//! | Logic-LNCL (student/teacher) | rules attached, iterative posterior              |
//! | AggNet / Raykar        | `TaskRules::None`, iterative posterior                 |
//! | w/o-Rule ablation      | `TaskRules::None`, iterative posterior                 |
//! | MV-Rule / GLAD-Rule    | rules attached, posterior fixed to MV / GLAD estimate  |
//! | our-other-rules        | the weaker rule variants attached                      |

use crate::annotators::{AnnotatorModel, WindowedAnnotatorModel};
use crate::config::{MStepObjective, OptimizerKind, TrainConfig};
use crate::distill::{infer_qb, TaskRules};
use crate::posterior::{infer_qa_into, infer_qa_windowed_into, FlatPosteriors};
use crate::predict::{evaluate_split, PredictionMode};
use crate::report::{EvalMetrics, TrainReport};
use lncl_crowd::truth::{MajorityVote, TruthInference};
use lncl_crowd::{metrics, CrowdDataset, TaskKind};
use lncl_nn::optim::{Adadelta, Adam, Optimizer, Sgd};
use lncl_nn::{Binding, InstanceClassifier, Module};
use lncl_tensor::{Matrix, TensorRng};

/// Where the truth posterior `q_a` comes from.
#[derive(Debug, Clone)]
pub enum PosteriorMode {
    /// Full Logic-LNCL: Eq. 13 with the live classifier and annotator model,
    /// refreshed every epoch.
    Iterative,
    /// Ablation mode (MV-Rule / GLAD-Rule): `q_a` is frozen to an external
    /// per-instance estimate (one `units x K` matrix per instance) and never
    /// refined.
    Fixed(Vec<Matrix>),
}

/// The Logic-LNCL trainer.
pub struct LogicLncl<M: InstanceClassifier + Module + Clone> {
    /// The neural classifier `p(t|x; Θ_NN)`.
    pub model: M,
    /// The annotator reliability model `Π` (pooled over each annotator's
    /// whole stream; always maintained, e.g. for
    /// [`AnnotatorModel::reliabilities`] read-outs).
    pub annotators: AnnotatorModel,
    /// Attached logic rules.
    pub rules: TaskRules,
    /// Training configuration.
    pub config: TrainConfig,
    /// Posterior mode (iterative vs fixed).
    pub posterior_mode: PosteriorMode,
    /// When set, the E-step judges every crowd label by its annotator's
    /// **stream-window** confusion matrix instead of the pooled one — the
    /// `logic-lncl-windowed` drift-tracking configuration.
    windowed: Option<WindowedAnnotatorModel>,
    /// Current training target `q_f` for the whole split, stored flat.
    qf: FlatPosteriors,
    best_model: Option<M>,
}

/// Builder for the [`LogicLncl`] trainer; see [`LogicLncl::builder`].
///
/// Defaults: no rules (the AggNet / w/o-Rule configuration), the
/// [`TrainConfig::fast`] configuration and the iterative posterior.
pub struct LogicLnclBuilder<M: InstanceClassifier + Module + Clone> {
    model: M,
    rules: TaskRules,
    config: TrainConfig,
    posterior: PosteriorMode,
    windowed: Option<(usize, f32)>,
}

impl<M: InstanceClassifier + Module + Clone> LogicLnclBuilder<M> {
    /// Attaches logic rules (e.g. [`crate::ablation::paper_rules`]).
    pub fn rules(mut self, rules: TaskRules) -> Self {
        self.rules = rules;
        self
    }

    /// Sets the training configuration.
    pub fn config(mut self, config: TrainConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the posterior mode (iterative vs fixed).
    pub fn posterior(mut self, posterior: PosteriorMode) -> Self {
        self.posterior = posterior;
        self
    }

    /// Freezes `q_a` to an external per-instance estimate (the MV-Rule /
    /// GLAD-Rule ablation); shorthand for
    /// `.posterior(PosteriorMode::Fixed(..))`.
    pub fn fixed_posterior(self, posterior: Vec<Matrix>) -> Self {
        self.posterior(PosteriorMode::Fixed(posterior))
    }

    /// Switches the E-step to **stream-windowed** confusion matrices
    /// ([`WindowedAnnotatorModel`]): windows of at most `window` instances
    /// per annotator, neighbouring windows blended with `decay^distance`.
    /// This is the `logic-lncl-windowed` drift-tracking configuration;
    /// degenerate parameters are rejected with a descriptive panic when the
    /// trainer is built.
    pub fn windowed_confusions(mut self, window: usize, decay: f32) -> Self {
        self.windowed = Some((window, decay));
        self
    }

    /// Finishes the builder, sizing the annotator model for `dataset`.
    pub fn build(self, dataset: &CrowdDataset) -> LogicLncl<M> {
        let mut trainer = LogicLncl::new(self.model, dataset, self.rules, self.config);
        trainer.posterior_mode = self.posterior;
        trainer.windowed =
            self.windowed.map(|(window, decay)| WindowedAnnotatorModel::new(dataset, window, decay, 0.7));
        trainer
    }
}

impl<M: InstanceClassifier + Module + Clone> LogicLncl<M> {
    /// Creates a trainer for a dataset.
    pub fn new(model: M, dataset: &CrowdDataset, rules: TaskRules, config: TrainConfig) -> Self {
        let annotators = AnnotatorModel::new(dataset.num_annotators, dataset.num_classes, 0.7);
        Self {
            model,
            annotators,
            rules,
            config,
            posterior_mode: PosteriorMode::Iterative,
            windowed: None,
            qf: FlatPosteriors::zeros(&[], dataset.num_classes),
            best_model: None,
        }
    }

    /// Starts a builder around a classifier:
    ///
    /// ```no_run
    /// # use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
    /// # use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
    /// # use lncl_tensor::TensorRng;
    /// use logic_lncl::ablation::paper_rules;
    /// use logic_lncl::{LogicLncl, TrainConfig};
    ///
    /// # let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    /// # let mut rng = TensorRng::seed_from_u64(0);
    /// # let model = SentimentCnn::new(
    /// #     SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() },
    /// #     &mut rng,
    /// # );
    /// let mut trainer = LogicLncl::builder(model)
    ///     .rules(paper_rules(&dataset))
    ///     .config(TrainConfig::builder().epochs(10).seed(7).build())
    ///     .build(&dataset);
    /// let report = trainer.train(&dataset);
    /// ```
    pub fn builder(model: M) -> LogicLnclBuilder<M> {
        LogicLnclBuilder {
            model,
            rules: TaskRules::None,
            config: TrainConfig::fast(12),
            posterior: PosteriorMode::Iterative,
            windowed: None,
        }
    }

    /// Current `q_f` targets for the whole training split (flat storage,
    /// one `units x K` block per instance), e.g. for inspecting the
    /// inference quality during experiments.
    pub fn qf(&self) -> &FlatPosteriors {
        &self.qf
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptimizerKind::Sgd { lr, momentum } => Box::new(Sgd::new(lr).with_momentum(momentum)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
            OptimizerKind::Adadelta { lr } => Box::new(Adadelta::new(lr)),
        }
    }

    /// Initialises `q_f` with majority voting (Algorithm 1, line 1).
    fn initialize_qf(&mut self, dataset: &CrowdDataset) {
        let view = dataset.annotation_view();
        let mv = MajorityVote.infer(&view);
        let k = dataset.num_classes;
        let mut qf = FlatPosteriors::zeros(&dataset.train, k);
        let mut cursor = vec![0usize; dataset.train.len()];
        for (u, post) in mv.posteriors.iter().enumerate() {
            let i = view.unit_instance[u];
            let unit = cursor[i];
            qf.instance_slice_mut(i)[unit * k..(unit + 1) * k].copy_from_slice(post);
            cursor[i] += 1;
        }
        self.qf = qf;
    }

    /// Evaluation-mode class probabilities for every training instance.
    fn train_predictions(&self, dataset: &CrowdDataset) -> Vec<Matrix> {
        dataset.train.iter().map(|inst| self.model.predict_proba(&inst.tokens)).collect()
    }

    /// The pseudo-E-step: recompute `q_a`, `q_b`, `q_f` and update Π.
    ///
    /// All of `q_a` and `q_f` live in one [`FlatPosteriors`] allocation;
    /// with no rules attached the rule projection and Eq. 9 interpolation
    /// run in place on it, so the whole step allocates nothing per
    /// instance.  Per-instance work only happens on the rules path, where
    /// the projection algorithms allocate their own results anyway.
    fn pseudo_e_step(&mut self, dataset: &CrowdDataset, imitation_k: f32) {
        let predictions = self.train_predictions(dataset);
        let model = &self.model;
        let clause = |tokens: &[usize]| model.predict_proba(tokens).row(0).to_vec();
        let imitation_k = imitation_k.clamp(0.0, 1.0);

        let mut new_qf = FlatPosteriors::zeros(&dataset.train, dataset.num_classes);
        for (i, inst) in dataset.train.iter().enumerate() {
            match &self.posterior_mode {
                PosteriorMode::Iterative => match &self.windowed {
                    Some(windowed) => {
                        infer_qa_windowed_into(inst, i, &predictions[i], windowed, new_qf.instance_slice_mut(i));
                    }
                    None => {
                        infer_qa_into(inst, &predictions[i], &self.annotators, new_qf.instance_slice_mut(i));
                    }
                },
                PosteriorMode::Fixed(fixed) => {
                    new_qf.instance_slice_mut(i).copy_from_slice(fixed[i].as_slice());
                }
            }
            if self.rules.is_none() {
                // q_b == q_a: Eq. 9 in place
                for v in new_qf.instance_slice_mut(i) {
                    *v = (1.0 - imitation_k) * *v + imitation_k * *v;
                }
            } else {
                let qa = new_qf.instance_matrix(i);
                let qb = infer_qb(&qa, &inst.tokens, &self.rules, self.config.regularization_c, &clause);
                for ((f, &a), &b) in new_qf.instance_slice_mut(i).iter_mut().zip(qa.as_slice()).zip(qb.as_slice()) {
                    *f = (1.0 - imitation_k) * a + imitation_k * b;
                }
            }
        }
        self.qf = new_qf;
        // Eq. 12: closed-form annotator update from q_f.  The pooled model
        // is always refreshed (reliability read-outs stay meaningful); the
        // windowed model additionally tracks per-stream-window confusions.
        self.annotators.update_from_qf(dataset, &self.qf, 0.01);
        if let Some(windowed) = &mut self.windowed {
            windowed.update_from_qf(dataset, &self.qf, 0.01);
        }
    }

    /// Runs Algorithm 1 and returns the training report.  The model keeps
    /// the parameters of the best development epoch.
    pub fn train(&mut self, dataset: &CrowdDataset) -> TrainReport {
        assert!(!dataset.train.is_empty(), "cannot train on an empty dataset");
        let mut rng = TensorRng::seed_from_u64(self.config.seed);
        let mut optimizer = self.make_optimizer();
        let base_lr = optimizer.learning_rate();
        self.initialize_qf(dataset);

        let mut report = TrainReport::default();
        let mut best_dev = f32::NEG_INFINITY;
        let mut epochs_without_improvement = 0usize;
        let sequence_task = dataset.task == TaskKind::SequenceTagging;

        for epoch in 0..self.config.epochs {
            // learning-rate schedule
            if let Some((factor, every)) = self.config.lr_decay {
                optimizer.set_learning_rate(base_lr * factor.powi((epoch / every) as i32));
            }
            let imitation_k = self.config.imitation.strength(epoch);

            // ---- pseudo-M-step: one pass of mini-batch updates ----------
            let mut order: Vec<usize> = (0..dataset.train.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in order.chunks(self.config.batch_size) {
                self.model.zero_grad();
                let mut batch_loss = 0.0f32;
                for &i in batch {
                    let inst = &dataset.train[i];
                    let mut tape = lncl_autograd::Tape::new();
                    let mut binding = Binding::new();
                    let logits = self.model.forward_logits(&mut tape, &mut binding, &inst.tokens, true, &mut rng);
                    let mut loss = tape.softmax_cross_entropy(logits, self.qf.instance_matrix(i));
                    if self.config.objective == MStepObjective::AnnotationWeighted {
                        loss = tape.scale(loss, inst.num_annotations().max(1) as f32);
                    }
                    batch_loss += tape.scalar(loss);
                    tape.backward(loss);
                    binding.accumulate(&tape, self.model.params_mut());
                }
                self.model.scale_grads(1.0 / batch.len() as f32);
                if let Some(clip) = self.config.grad_clip {
                    self.model.clip_grad_norm(clip);
                }
                let mut params = self.model.params_mut();
                optimizer.step(&mut params);
                epoch_loss += batch_loss / batch.len() as f32;
                batches += 1;
            }
            report.loss_history.push(epoch_loss / batches.max(1) as f32);

            // ---- pseudo-E-step ------------------------------------------
            self.pseudo_e_step(dataset, imitation_k);

            // ---- development evaluation & early stopping ----------------
            let dev_split = if dataset.dev.is_empty() { &dataset.test } else { &dataset.dev };
            let dev_metrics = evaluate_split(
                &self.model,
                dev_split,
                dataset.task,
                PredictionMode::Student,
                &self.rules,
                self.config.regularization_c,
            );
            let dev_metric = dev_metrics.headline(sequence_task);
            report.dev_history.push(dev_metric);
            report.epochs_run = epoch + 1;
            if dev_metric > best_dev {
                best_dev = dev_metric;
                report.best_epoch = epoch;
                epochs_without_improvement = 0;
                self.best_model = Some(self.model.clone());
            } else {
                epochs_without_improvement += 1;
                if epochs_without_improvement > self.config.early_stopping_patience {
                    break;
                }
            }
        }

        // restore the best model seen on the development split
        if let Some(best) = self.best_model.take() {
            self.model = best;
        }
        report.inference = self.inference_metrics(dataset);
        report
    }

    /// Inference quality of the current `q_f` against the training gold
    /// labels (the "Inference" columns of Tables II/III).
    pub fn inference_metrics(&self, dataset: &CrowdDataset) -> EvalMetrics {
        if self.qf.num_instances() == 0 {
            return EvalMetrics::default();
        }
        let predictions: Vec<Vec<usize>> = (0..self.qf.num_instances()).map(|i| self.qf.instance_argmax(i)).collect();
        let gold: Vec<Vec<usize>> = dataset.train.iter().map(|i| i.gold.clone()).collect();
        match dataset.task {
            TaskKind::Classification => {
                let flat_pred: Vec<usize> = predictions.iter().map(|p| p[0]).collect();
                let flat_gold: Vec<usize> = gold.iter().map(|g| g[0]).collect();
                EvalMetrics::from_accuracy(metrics::accuracy(&flat_pred, &flat_gold))
            }
            TaskKind::SequenceTagging => {
                let prf = metrics::span_f1(&predictions, &gold);
                EvalMetrics {
                    accuracy: metrics::token_accuracy(&predictions, &gold),
                    precision: prf.precision,
                    recall: prf.recall,
                    f1: prf.f1,
                }
            }
        }
    }

    /// Evaluates the trained model on a split with the given output mode.
    pub fn evaluate(&self, split: &[lncl_crowd::Instance], task: TaskKind, mode: PredictionMode) -> EvalMetrics {
        evaluate_split(&self.model, split, task, mode, &self.rules, self.config.regularization_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
    use lncl_logic::rules::sentiment_but::SentimentContrastRule;
    use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};

    fn tiny_dataset() -> CrowdDataset {
        generate_sentiment(&SentimentDatasetConfig {
            train_size: 400,
            dev_size: 150,
            test_size: 150,
            num_annotators: 15,
            filler_vocab: 40,
            seed: 0,
            ..SentimentDatasetConfig::tiny()
        })
    }

    fn tiny_model(dataset: &CrowdDataset, seed: u64) -> SentimentCnn {
        let mut rng = TensorRng::seed_from_u64(seed);
        SentimentCnn::new(
            SentimentCnnConfig {
                vocab_size: dataset.vocab_size(),
                embedding_dim: 16,
                windows: vec![2, 3],
                filters_per_window: 8,
                dropout_keep: 0.7,
                num_classes: dataset.num_classes,
            },
            &mut rng,
        )
    }

    fn fast_config(epochs: usize) -> TrainConfig {
        TrainConfig::fast(epochs)
    }

    fn but_rules(dataset: &CrowdDataset) -> TaskRules {
        TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(dataset.but_token.unwrap()))])
    }

    #[test]
    fn training_improves_over_initialisation() {
        let dataset = tiny_dataset();
        let model = tiny_model(&dataset, 1);
        let untrained_acc =
            evaluate_split(&model, &dataset.test, dataset.task, PredictionMode::Student, &TaskRules::None, 5.0)
                .accuracy;
        let mut trainer = LogicLncl::new(model, &dataset, but_rules(&dataset), fast_config(10));
        let report = trainer.train(&dataset);
        let trained_acc = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student).accuracy;
        assert!(report.epochs_run >= 1);
        assert!(
            trained_acc > untrained_acc.max(0.62),
            "training should beat the untrained model: {untrained_acc} -> {trained_acc}"
        );
        // inference quality should comfortably beat raw crowd-label accuracy
        assert!(report.inference.accuracy > metrics::crowd_label_accuracy(&dataset));
    }

    #[test]
    fn loss_history_decreases() {
        let dataset = tiny_dataset();
        let model = tiny_model(&dataset, 2);
        let mut trainer = LogicLncl::new(model, &dataset, TaskRules::None, fast_config(5));
        let report = trainer.train(&dataset);
        assert!(report.loss_history.len() >= 2);
        assert!(
            report.loss_history.last().unwrap() < &report.loss_history[0],
            "loss should decrease: {:?}",
            report.loss_history
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let dataset = tiny_dataset();
        let model = tiny_model(&dataset, 3);
        let config = TrainConfig { early_stopping_patience: 0, ..fast_config(30) };
        let mut trainer = LogicLncl::new(model, &dataset, TaskRules::None, config);
        let report = trainer.train(&dataset);
        assert!(report.epochs_run < 30, "patience 0 should stop early (ran {})", report.epochs_run);
    }

    #[test]
    fn fixed_posterior_mode_skips_qa_refinement() {
        let dataset = tiny_dataset();
        let view = dataset.annotation_view();
        let mv = MajorityVote.infer(&view);
        let mut fixed: Vec<Matrix> =
            dataset.train.iter().map(|inst| Matrix::zeros(inst.num_units(), dataset.num_classes)).collect();
        let mut cursor = vec![0usize; fixed.len()];
        for (u, post) in mv.posteriors.iter().enumerate() {
            let i = view.unit_instance[u];
            fixed[i].row_mut(cursor[i]).copy_from_slice(post);
            cursor[i] += 1;
        }
        let model = tiny_model(&dataset, 4);
        let mut trainer =
            LogicLncl::builder(model).config(fast_config(2)).fixed_posterior(fixed.clone()).build(&dataset);
        let _ = trainer.train(&dataset);
        // with no rules and a fixed posterior, q_f must equal the fixed MV estimate
        for (i, mv_inst) in fixed.iter().enumerate() {
            assert!(trainer.qf().instance_matrix(i).approx_eq(mv_inst, 1e-5));
        }
    }

    #[test]
    fn windowed_e_step_improves_inference_under_step_change_drift() {
        use lncl_crowd::scenario::{generate_scenario, Archetype, DriftSchedule, PropensityProfile, ScenarioConfig};
        let dataset = generate_scenario(
            &ScenarioConfig::tagging("step-drift")
                .with_sizes(400, 40, 40)
                .with_annotators(8)
                .with_redundancy(5, 5)
                .with_propensity(PropensityProfile::LongTail)
                .with_mix(vec![(Archetype::Reliable { accuracy: 0.9 }, 1.0)])
                .with_drift(DriftSchedule::StepChange { at: 0.5, level: 0.9 })
                .with_seed(17),
        );
        let config = fast_config(4);
        let mut rng = TensorRng::seed_from_u64(9);
        let model = lncl_nn::models::NerConvGru::new(
            lncl_nn::models::NerConvGruConfig {
                vocab_size: dataset.vocab_size(),
                embedding_dim: 12,
                conv_window: 3,
                conv_features: 12,
                gru_hidden: 10,
                dropout_keep: 0.7,
                num_classes: dataset.num_classes,
            },
            &mut rng,
        );
        let mut pooled = LogicLncl::builder(model.clone()).config(config.clone()).build(&dataset);
        let pooled_report = pooled.train(&dataset);
        let mut windowed = LogicLncl::builder(model).config(config).windowed_confusions(48, 0.35).build(&dataset);
        let windowed_report = windowed.train(&dataset);
        assert!(
            windowed_report.inference.accuracy > pooled_report.inference.accuracy + 0.02,
            "the windowed E-step must track the drift the pooled one averages away: pooled {}, windowed {}",
            pooled_report.inference.accuracy,
            windowed_report.inference.accuracy
        );
    }

    #[test]
    fn annotator_reliability_estimates_correlate_with_truth() {
        let dataset = tiny_dataset();
        let model = tiny_model(&dataset, 5);
        let mut trainer = LogicLncl::new(model, &dataset, but_rules(&dataset), fast_config(8));
        let _ = trainer.train(&dataset);
        let estimated = trainer.annotators.reliabilities();
        // empirical reliability from the data
        let mut est = Vec::new();
        let mut real = Vec::new();
        for (a, &estimated_reliability) in estimated.iter().enumerate() {
            if let Some(acc) = metrics::annotator_accuracy(&dataset.train, a) {
                let labels = dataset.train.iter().filter(|i| i.labels_by(a).is_some()).count();
                if labels >= 5 {
                    est.push(estimated_reliability);
                    real.push(acc);
                }
            }
        }
        let r = lncl_tensor::stats::pearson(&est, &real);
        assert!(r > 0.5, "estimated reliabilities should correlate with the real ones (r = {r})");
    }
}
