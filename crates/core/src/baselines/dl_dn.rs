//! DL-DN / DL-WDN (Guan et al., 2018): train one copy of the network per
//! annotator on that annotator's labels, then average the predictions —
//! uniformly (DN) or weighted by how many instances each annotator labelled
//! (WDN).

use crate::baselines::two_stage::{one_hot_targets, train_supervised};
use crate::config::TrainConfig;
use crate::predict::evaluate_predictions;
use crate::report::EvalMetrics;
use lncl_crowd::{CrowdDataset, Instance};
use lncl_nn::{InstanceClassifier, Module};
use lncl_tensor::stats;

/// Averaging scheme over the per-annotator networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlDnKind {
    /// Uniform average ("DL-DN").
    Uniform,
    /// Average weighted by each annotator's number of labelled instances
    /// ("DL-WDN").
    Weighted,
}

impl DlDnKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DlDnKind::Uniform => "DL-DN",
            DlDnKind::Weighted => "DL-WDN",
        }
    }
}

/// Configuration of the DL-DN baseline.
#[derive(Debug, Clone)]
pub struct DlDnConfig {
    /// Per-annotator training configuration (kept short — each annotator has
    /// only a small slice of the data).
    pub train: TrainConfig,
    /// Annotators with fewer labelled instances than this are skipped (they
    /// cannot train a useful network and only add noise).
    pub min_instances: usize,
    /// Cap on the number of annotator networks (the most prolific are kept);
    /// bounds the cost when the pool is large.
    pub max_annotators: usize,
}

impl Default for DlDnConfig {
    fn default() -> Self {
        Self { train: TrainConfig::fast(4), min_instances: 20, max_annotators: 12 }
    }
}

/// Trains the per-annotator ensemble and evaluates it on the test split.
/// `model_factory` builds a fresh (randomly initialised) network for each
/// annotator.  Returns `(test metrics, ensemble predictions on test)`.
pub fn train_dl_dn<M, F>(
    dataset: &CrowdDataset,
    kind: DlDnKind,
    config: &DlDnConfig,
    model_factory: F,
) -> (EvalMetrics, Vec<Vec<usize>>)
where
    M: InstanceClassifier + Module + Clone,
    F: FnMut(u64) -> M,
{
    let ensemble = train_ensemble(dataset, kind, config, model_factory);
    let predictions: Vec<Vec<usize>> =
        dataset.test.iter().map(|inst| ensemble_predict(&ensemble, &inst.tokens, dataset.num_classes)).collect();
    let metrics = evaluate_predictions(&predictions, &dataset.test, dataset.task);
    (metrics, predictions)
}

/// Trains the per-annotator ensemble and reads out its averaged softmax
/// posterior over the true class for every unit of the **training split**,
/// in [`AnnotationView`](lncl_crowd::AnnotationView) order.  The weighted
/// average of per-model distributions is itself a distribution, so every
/// row sums to 1 — the posterior-normalisation invariant the robustness
/// suite checks.
pub fn train_dl_dn_posteriors<M, F>(
    dataset: &CrowdDataset,
    kind: DlDnKind,
    config: &DlDnConfig,
    model_factory: F,
) -> Vec<Vec<f32>>
where
    M: InstanceClassifier + Module + Clone,
    F: FnMut(u64) -> M,
{
    let ensemble = train_ensemble(dataset, kind, config, model_factory);
    dataset.train.iter().flat_map(|inst| ensemble_proba(&ensemble, &inst.tokens, dataset.num_classes)).collect()
}

/// Trains one network per qualifying annotator on that annotator's labels,
/// returning the `(model, averaging weight)` ensemble.
fn train_ensemble<M, F>(
    dataset: &CrowdDataset,
    kind: DlDnKind,
    config: &DlDnConfig,
    mut model_factory: F,
) -> Vec<(M, f32)>
where
    M: InstanceClassifier + Module + Clone,
    F: FnMut(u64) -> M,
{
    // pick the annotators with enough data; count ties are broken by a
    // fingerprint of each annotator's label stream (not by annotator id),
    // so renumbering the annotators cannot change which network/seed a
    // given label stream is trained with — the annotator-permutation
    // invariance the robustness suite checks
    let mut counts: Vec<(usize, usize)> = (0..dataset.num_annotators)
        .map(|a| (a, dataset.train.iter().filter(|i| i.labels_by(a).is_some()).count()))
        .collect();
    counts.sort_by_cached_key(|&(a, count)| (std::cmp::Reverse(count), stream_fingerprint(dataset, a)));
    let selected: Vec<(usize, usize)> =
        counts.into_iter().filter(|&(_, n)| n >= config.min_instances).take(config.max_annotators).collect();
    assert!(!selected.is_empty(), "DL-DN: no annotator has enough labels (min_instances too high?)");

    let mut ensemble: Vec<(M, f32)> = Vec::with_capacity(selected.len());
    for (idx, &(annotator, count)) in selected.iter().enumerate() {
        // restrict the dataset to this annotator's labels
        let train: Vec<Instance> = dataset
            .train
            .iter()
            .filter_map(|inst| {
                inst.labels_by(annotator).map(|labels| Instance {
                    tokens: inst.tokens.clone(),
                    gold: labels.to_vec(), // train on the annotator's labels as if they were gold
                    crowd_labels: Vec::new(),
                })
            })
            .collect();
        let sub_dataset = CrowdDataset { train, ..dataset.clone() };
        let targets =
            one_hot_targets(&sub_dataset.train.iter().map(|i| i.gold.clone()).collect::<Vec<_>>(), dataset.num_classes);
        let mut model = model_factory(idx as u64);
        let sub_config = TrainConfig { seed: config.train.seed.wrapping_add(idx as u64), ..config.train.clone() };
        train_supervised(&mut model, &sub_dataset, &targets, &sub_config);
        let weight = match kind {
            DlDnKind::Uniform => 1.0,
            DlDnKind::Weighted => count as f32,
        };
        ensemble.push((model, weight));
    }
    ensemble
}

/// FNV-1a hash of an annotator's `(instance index, labels)` stream.  Two
/// annotators get the same fingerprint only when they labelled the same
/// instances identically (e.g. colluding copies), in which case their
/// relative order is immaterial.
fn stream_fingerprint(dataset: &CrowdDataset, annotator: usize) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (i, inst) in dataset.train.iter().enumerate() {
        if let Some(labels) = inst.labels_by(annotator) {
            mix(i as u64);
            for &l in labels {
                mix(l as u64);
            }
        }
    }
    hash
}

/// Weighted-average class distribution of the ensemble, one row per unit.
fn ensemble_proba<M: InstanceClassifier>(ensemble: &[(M, f32)], tokens: &[usize], num_classes: usize) -> Vec<Vec<f32>> {
    let mut total: Vec<Vec<f32>> = Vec::new();
    let mut weight_sum = 0.0f32;
    for (model, weight) in ensemble {
        let probs = model.predict_proba(tokens);
        if total.is_empty() {
            total = vec![vec![0.0; num_classes]; probs.rows()];
        }
        for (r, acc) in total.iter_mut().enumerate() {
            for (c, a) in acc.iter_mut().enumerate() {
                *a += weight * probs[(r, c)];
            }
        }
        weight_sum += weight;
    }
    for row in &mut total {
        for v in row.iter_mut() {
            *v /= weight_sum.max(1e-6);
        }
    }
    total
}

fn ensemble_predict<M: InstanceClassifier>(ensemble: &[(M, f32)], tokens: &[usize], num_classes: usize) -> Vec<usize> {
    ensemble_proba(ensemble, tokens, num_classes).iter().map(|row| stats::argmax(row)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
    use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
    use lncl_tensor::TensorRng;

    fn factory(dataset: &CrowdDataset) -> impl FnMut(u64) -> SentimentCnn + '_ {
        move |seed| {
            let mut rng = TensorRng::seed_from_u64(seed + 100);
            SentimentCnn::new(
                SentimentCnnConfig {
                    vocab_size: dataset.vocab_size(),
                    embedding_dim: 16,
                    windows: vec![2, 3],
                    filters_per_window: 8,
                    dropout_keep: 0.7,
                    num_classes: 2,
                },
                &mut rng,
            )
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DlDnKind::Uniform.name(), "DL-DN");
        assert_eq!(DlDnKind::Weighted.name(), "DL-WDN");
    }

    #[test]
    fn ensemble_beats_chance_on_sentiment() {
        // a small pool of prolific annotators so every per-annotator network
        // has enough data to learn from
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: 400,
            dev_size: 100,
            test_size: 120,
            num_annotators: 6,
            min_labels_per_instance: 4,
            max_labels_per_instance: 6,
            spammer_fraction: 0.1,
            filler_vocab: 30,
            ..SentimentDatasetConfig::tiny()
        });
        let config = DlDnConfig { train: TrainConfig::fast(10), min_instances: 50, max_annotators: 6 };
        let (metrics, predictions) = train_dl_dn(&dataset, DlDnKind::Weighted, &config, factory(&dataset));
        assert_eq!(predictions.len(), dataset.test.len());
        assert!(metrics.accuracy > 0.55, "DL-WDN accuracy {}", metrics.accuracy);
    }

    #[test]
    #[should_panic]
    fn panics_when_no_annotator_qualifies() {
        let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
        let config = DlDnConfig { min_instances: 10_000, ..Default::default() };
        let _ = train_dl_dn(&dataset, DlDnKind::Uniform, &config, factory(&dataset));
    }
}
