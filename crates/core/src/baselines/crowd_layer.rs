//! The "crowd layer" baselines CL(MW), CL(VW) and CL(VW-B) of Rodrigues &
//! Pereira (AAAI 2018).
//!
//! The classifier's class scores are mapped to each annotator's label
//! distribution by an annotator-specific transformation and the whole stack
//! is trained end-to-end on the raw crowd labels:
//!
//! * **MW** — a per-annotator `K x K` matrix (identity-initialised);
//! * **VW** — a per-annotator per-class scaling vector (ones-initialised);
//! * **VW-B** — scaling vector plus per-class bias.
//!
//! As in the paper, the classifier can be pre-trained for a few epochs on
//! majority-voting labels before the crowd layer is attached (the `MW, 5`
//! configuration of Table III).

use crate::baselines::two_stage::{one_hot_targets, train_supervised};
use crate::config::{OptimizerKind, TrainConfig};
use crate::predict::{evaluate_split, PredictionMode};
use crate::report::EvalMetrics;
use lncl_crowd::truth::{MajorityVote, TruthInference};
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_nn::optim::{Adadelta, Adam, Optimizer, Sgd};
use lncl_nn::{Binding, InstanceClassifier, Module, Param};
use lncl_tensor::{Matrix, TensorRng};

/// Which annotator transformation the crowd layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrowdLayerKind {
    /// Matrix-per-annotator ("MW").
    MatrixWeight,
    /// Vector-per-annotator ("VW").
    VectorWeight,
    /// Vector plus bias ("VW-B").
    VectorWeightBias,
}

impl CrowdLayerKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CrowdLayerKind::MatrixWeight => "CL (MW)",
            CrowdLayerKind::VectorWeight => "CL (VW)",
            CrowdLayerKind::VectorWeightBias => "CL (VW-B)",
        }
    }
}

/// End-to-end crowd-layer trainer wrapping any [`InstanceClassifier`].
pub struct CrowdLayerTrainer<M: InstanceClassifier + Module + Clone> {
    /// The backbone classifier.
    pub model: M,
    kind: CrowdLayerKind,
    /// Per-annotator transformation parameters.
    weights: Vec<Param>,
    biases: Vec<Param>,
    config: TrainConfig,
    /// Number of epochs of majority-voting pre-training before end-to-end
    /// training (0 disables pre-training).
    pub pretrain_epochs: usize,
}

impl<M: InstanceClassifier + Module + Clone> CrowdLayerTrainer<M> {
    /// Creates a crowd-layer trainer.
    pub fn new(
        model: M,
        dataset: &CrowdDataset,
        kind: CrowdLayerKind,
        config: TrainConfig,
        pretrain_epochs: usize,
    ) -> Self {
        let k = dataset.num_classes;
        let weights = (0..dataset.num_annotators)
            .map(|j| match kind {
                CrowdLayerKind::MatrixWeight => Param::new(format!("crowd_layer.w{j}"), Matrix::identity(k)),
                _ => Param::new(format!("crowd_layer.w{j}"), Matrix::full(1, k, 1.0)),
            })
            .collect();
        let biases =
            (0..dataset.num_annotators).map(|j| Param::new(format!("crowd_layer.b{j}"), Matrix::zeros(1, k))).collect();
        Self { model, kind, weights, biases, config, pretrain_epochs }
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptimizerKind::Sgd { lr, momentum } => Box::new(Sgd::new(lr).with_momentum(momentum)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
            OptimizerKind::Adadelta { lr } => Box::new(Adadelta::new(lr)),
        }
    }

    /// Trains the crowd layer end-to-end on the raw crowd labels.
    pub fn train(&mut self, dataset: &CrowdDataset) -> EvalMetrics {
        // optional pre-training on MV labels
        if self.pretrain_epochs > 0 {
            let view = dataset.annotation_view();
            let mv = MajorityVote.infer(&view);
            let targets = one_hot_targets(&mv.hard_by_instance(&view), dataset.num_classes);
            let pre_config = TrainConfig { epochs: self.pretrain_epochs, ..self.config.clone() };
            train_supervised(&mut self.model, dataset, &targets, &pre_config);
        }

        let mut rng = TensorRng::seed_from_u64(self.config.seed.wrapping_add(17));
        let mut optimizer = self.make_optimizer();
        // The crowd layer is invariant to a global class permutation (the
        // backbone can flip classes as long as every annotator matrix flips
        // them back).  Identity/ones initialisation plus a slow, plain-SGD
        // update of the annotator parameters keeps the class semantics
        // anchored to the backbone, as in the reference implementation.
        let mut annotator_optimizer: Box<dyn Optimizer> = Box::new(Sgd::new(0.01));
        let sequence_task = dataset.task == TaskKind::SequenceTagging;
        let mut best_dev = f32::NEG_INFINITY;
        let mut best_model: Option<M> = None;
        let mut stale = 0usize;

        for _epoch in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..dataset.train.len()).collect();
            rng.shuffle(&mut order);
            for batch in order.chunks(self.config.batch_size) {
                self.model.zero_grad();
                for p in self.weights.iter_mut().chain(self.biases.iter_mut()) {
                    p.zero_grad();
                }
                for &i in batch {
                    let inst = &dataset.train[i];
                    if inst.crowd_labels.is_empty() {
                        continue;
                    }
                    let mut tape = lncl_autograd::Tape::new();
                    let mut binding = Binding::new();
                    let logits = self.model.forward_logits(&mut tape, &mut binding, &inst.tokens, true, &mut rng);
                    // The annotator transformation is applied to the class
                    // scores (logits): with identity/ones initialisation the
                    // crowd layer starts as plain cross-entropy training and
                    // learns per-annotator distortions on top, which trains
                    // much faster at this scale than stacking two softmaxes.
                    let (units, k) = tape.shape(logits);
                    let mut instance_loss: Option<lncl_autograd::Var> = None;
                    for cl in &inst.crowd_labels {
                        let observed = one_hot_matrix(&cl.labels, k);
                        let scores = match self.kind {
                            CrowdLayerKind::MatrixWeight => {
                                let w = binding.bind(&mut tape, &self.weights[cl.annotator]);
                                tape.matmul(logits, w)
                            }
                            CrowdLayerKind::VectorWeight => {
                                let w = binding.bind(&mut tape, &self.weights[cl.annotator]);
                                let w_rep = tape.gather_rows(w, &vec![0; units]);
                                tape.mul(logits, w_rep)
                            }
                            CrowdLayerKind::VectorWeightBias => {
                                let w = binding.bind(&mut tape, &self.weights[cl.annotator]);
                                let b = binding.bind(&mut tape, &self.biases[cl.annotator]);
                                let w_rep = tape.gather_rows(w, &vec![0; units]);
                                let scaled = tape.mul(logits, w_rep);
                                tape.add_row_broadcast(scaled, b)
                            }
                        };
                        let loss = tape.softmax_cross_entropy(scores, observed);
                        instance_loss = Some(match instance_loss {
                            Some(total) => tape.add(total, loss),
                            None => loss,
                        });
                    }
                    let Some(instance_loss) = instance_loss else { continue };
                    tape.backward(instance_loss);
                    binding.accumulate(&tape, self.model.params_mut());
                    binding.accumulate(&tape, self.weights.iter_mut().chain(self.biases.iter_mut()));
                }
                let scale = 1.0 / batch.len() as f32;
                self.model.scale_grads(scale);
                for p in self.weights.iter_mut().chain(self.biases.iter_mut()) {
                    p.grad.map_inplace(|g| g * scale);
                }
                if let Some(clip) = self.config.grad_clip {
                    self.model.clip_grad_norm(clip);
                }
                let mut params: Vec<&mut Param> = self.model.params_mut();
                optimizer.step(&mut params);
                let mut annotator_params: Vec<&mut Param> =
                    self.weights.iter_mut().chain(self.biases.iter_mut()).collect();
                annotator_optimizer.step(&mut annotator_params);
            }
            let dev_split = if dataset.dev.is_empty() { &dataset.test } else { &dataset.dev };
            let dev = evaluate_split(
                &self.model,
                dev_split,
                dataset.task,
                PredictionMode::Student,
                &crate::distill::TaskRules::None,
                0.0,
            )
            .headline(sequence_task);
            if dev > best_dev {
                best_dev = dev;
                best_model = Some(self.model.clone());
                stale = 0;
            } else {
                stale += 1;
                if stale > self.config.early_stopping_patience {
                    break;
                }
            }
        }
        if let Some(best) = best_model {
            self.model = best;
        }
        self.inference_metrics(dataset)
    }

    /// Inference quality: the classifier's own outputs on the training split
    /// (the convention used for the CL rows of Tables II/III).
    pub fn inference_metrics(&self, dataset: &CrowdDataset) -> EvalMetrics {
        let predictions: Vec<Vec<usize>> = dataset.train.iter().map(|inst| self.model.predict(&inst.tokens)).collect();
        crate::baselines::two_stage::inference_metrics_of(&predictions, dataset)
    }

    /// Evaluates the backbone classifier on a split.
    pub fn evaluate(&self, split: &[lncl_crowd::Instance], task: TaskKind) -> EvalMetrics {
        evaluate_split(&self.model, split, task, PredictionMode::Student, &crate::distill::TaskRules::None, 0.0)
    }

    /// The trained backbone's softmax posterior over the true class for
    /// every unit of the training split, in
    /// [`AnnotationView`](lncl_crowd::AnnotationView) order.  The crowd
    /// layer has no explicit truth-inference stage; the backbone's own
    /// class distribution *is* its estimate of the truth (the same
    /// convention [`CrowdLayerTrainer::inference_metrics`] scores), which
    /// is what the robustness suite's posterior invariants validate.
    pub fn truth_posteriors(&self, dataset: &CrowdDataset) -> Vec<Vec<f32>> {
        split_posteriors(&self.model, &dataset.train)
    }
}

/// Softmax class probabilities of a classifier for every unit of a split,
/// one `K`-length row per unit in instance order.
pub(crate) fn split_posteriors<M: InstanceClassifier>(model: &M, split: &[lncl_crowd::Instance]) -> Vec<Vec<f32>> {
    let mut rows = Vec::new();
    for inst in split {
        let probs = model.predict_proba(&inst.tokens);
        rows.extend((0..probs.rows()).map(|r| probs.row(r).to_vec()));
    }
    rows
}

fn one_hot_matrix(labels: &[usize], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (r, &l) in labels.iter().enumerate() {
        m[(r, l)] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
    use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};

    fn setup() -> (CrowdDataset, SentimentCnn, TrainConfig) {
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: 400,
            dev_size: 150,
            test_size: 150,
            num_annotators: 15,
            filler_vocab: 40,
            seed: 0,
            ..SentimentDatasetConfig::tiny()
        });
        let mut rng = TensorRng::seed_from_u64(0);
        let model = SentimentCnn::new(
            SentimentCnnConfig {
                vocab_size: dataset.vocab_size(),
                embedding_dim: 16,
                windows: vec![2, 3],
                filters_per_window: 8,
                dropout_keep: 0.7,
                num_classes: 2,
            },
            &mut rng,
        );
        let config = TrainConfig::fast(10);
        (dataset, model, config)
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(CrowdLayerKind::MatrixWeight.name(), "CL (MW)");
        assert_eq!(CrowdLayerKind::VectorWeight.name(), "CL (VW)");
        assert_eq!(CrowdLayerKind::VectorWeightBias.name(), "CL (VW-B)");
    }

    #[test]
    fn mw_training_learns_better_than_chance() {
        let (dataset, model, config) = setup();
        let mut trainer = CrowdLayerTrainer::new(model, &dataset, CrowdLayerKind::MatrixWeight, config, 2);
        let inference = trainer.train(&dataset);
        let test = trainer.evaluate(&dataset.test, dataset.task);
        assert!(test.accuracy > 0.58, "CL(MW) test accuracy {}", test.accuracy);
        assert!(inference.accuracy > 0.65, "CL(MW) inference accuracy {}", inference.accuracy);
    }

    #[test]
    fn vw_variants_run_without_pretraining() {
        let (dataset, model, config) = setup();
        for kind in [CrowdLayerKind::VectorWeight, CrowdLayerKind::VectorWeightBias] {
            let mut trainer = CrowdLayerTrainer::new(model.clone(), &dataset, kind, config.clone(), 0);
            let inference = trainer.train(&dataset);
            assert!(inference.accuracy > 0.6, "{} inference {}", kind.name(), inference.accuracy);
        }
    }

    #[test]
    fn one_hot_matrix_layout() {
        let m = one_hot_matrix(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }
}
