//! The compared methods of Tables II and III.
//!
//! * [`two_stage`] — MV-Classifier, GLAD-Classifier, DS-Classifier and the
//!   Gold upper bound (truth inference → supervised training);
//! * [`crowd_layer`] — CL(MW), CL(VW), CL(VW-B) of Rodrigues & Pereira
//!   (2018), the deep "crowd layer" trained end-to-end on raw crowd labels;
//! * [`dl_dn`] — DL-DN / DL-WDN of Guan et al. (2018), one network per
//!   annotator with (weighted) prediction averaging;
//! * Raykar / AggNet / w-o-Rule are the [`crate::trainer::LogicLncl`] trainer
//!   with [`crate::distill::TaskRules::None`] (see the trainer docs).

pub mod crowd_layer;
pub mod dl_dn;
pub mod two_stage;

pub use crowd_layer::{CrowdLayerKind, CrowdLayerTrainer};
pub use dl_dn::{train_dl_dn, train_dl_dn_posteriors, DlDnConfig, DlDnKind};
pub use two_stage::{train_supervised, SupervisedReport};
