//! Two-stage baselines: estimate the ground truth with a truth-inference
//! method (or use the gold labels), then train the classifier with ordinary
//! supervised learning.  Covers MV-Classifier, GLAD-Classifier and the Gold
//! upper bound of Tables II/III.

use crate::config::{OptimizerKind, TrainConfig};
use crate::predict::{evaluate_split, PredictionMode};
use crate::report::EvalMetrics;
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_nn::optim::{Adadelta, Adam, Optimizer, Sgd};
use lncl_nn::{Binding, InstanceClassifier, Module};
use lncl_tensor::{Matrix, TensorRng};

/// Report of a supervised training run.
#[derive(Debug, Clone, Default)]
pub struct SupervisedReport {
    /// Mean training loss per epoch.
    pub loss_history: Vec<f32>,
    /// Development metric per epoch.
    pub dev_history: Vec<f32>,
    /// Number of epochs actually run.
    pub epochs_run: usize,
}

fn make_optimizer(kind: OptimizerKind) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Sgd { lr, momentum } => Box::new(Sgd::new(lr).with_momentum(momentum)),
        OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        OptimizerKind::Adadelta { lr } => Box::new(Adadelta::new(lr)),
    }
}

/// Trains `model` on the training split of `dataset` against the supplied
/// per-instance *soft* target matrices (`units x K`; use one-hot rows for
/// hard labels).  Early stopping follows the development split exactly as
/// in the paper.
pub fn train_supervised<M: InstanceClassifier + Module + Clone>(
    model: &mut M,
    dataset: &CrowdDataset,
    targets: &[Matrix],
    config: &TrainConfig,
) -> SupervisedReport {
    assert_eq!(targets.len(), dataset.train.len(), "one target per training instance required");
    let mut rng = TensorRng::seed_from_u64(config.seed);
    let mut optimizer = make_optimizer(config.optimizer);
    let base_lr = optimizer.learning_rate();
    let sequence_task = dataset.task == TaskKind::SequenceTagging;

    let mut report = SupervisedReport::default();
    let mut best_dev = f32::NEG_INFINITY;
    let mut best_model: Option<M> = None;
    let mut stale = 0usize;

    for epoch in 0..config.epochs {
        if let Some((factor, every)) = config.lr_decay {
            optimizer.set_learning_rate(base_lr * factor.powi((epoch / every) as i32));
        }
        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for batch in order.chunks(config.batch_size) {
            model.zero_grad();
            let mut batch_loss = 0.0;
            for &i in batch {
                let inst = &dataset.train[i];
                let mut tape = lncl_autograd::Tape::new();
                let mut binding = Binding::new();
                let logits = model.forward_logits(&mut tape, &mut binding, &inst.tokens, true, &mut rng);
                let loss = tape.softmax_cross_entropy(logits, targets[i].clone());
                batch_loss += tape.scalar(loss);
                tape.backward(loss);
                binding.accumulate(&tape, model.params_mut());
            }
            model.scale_grads(1.0 / batch.len() as f32);
            if let Some(clip) = config.grad_clip {
                model.clip_grad_norm(clip);
            }
            let mut params = model.params_mut();
            optimizer.step(&mut params);
            epoch_loss += batch_loss / batch.len() as f32;
            batches += 1;
        }
        report.loss_history.push(epoch_loss / batches.max(1) as f32);

        let dev_split = if dataset.dev.is_empty() { &dataset.test } else { &dataset.dev };
        let dev = evaluate_split(
            model,
            dev_split,
            dataset.task,
            PredictionMode::Student,
            &crate::distill::TaskRules::None,
            0.0,
        )
        .headline(sequence_task);
        report.dev_history.push(dev);
        report.epochs_run = epoch + 1;
        if dev > best_dev {
            best_dev = dev;
            best_model = Some(model.clone());
            stale = 0;
        } else {
            stale += 1;
            if stale > config.early_stopping_patience {
                break;
            }
        }
    }
    if let Some(best) = best_model {
        *model = best;
    }
    report
}

/// Converts hard per-instance labels into one-hot soft-target matrices.
pub fn one_hot_targets(labels: &[Vec<usize>], num_classes: usize) -> Vec<Matrix> {
    labels
        .iter()
        .map(|inst| Matrix::from_fn(inst.len(), num_classes, |u, c| if inst[u] == c { 1.0 } else { 0.0 }))
        .collect()
}

/// Gold-label targets of a dataset's training split (the "Gold" upper bound).
pub fn gold_targets(dataset: &CrowdDataset) -> Vec<Matrix> {
    one_hot_targets(&dataset.train.iter().map(|i| i.gold.clone()).collect::<Vec<_>>(), dataset.num_classes)
}

/// Evaluates the inference quality of a set of hard labels against the
/// training gold (the "Inference" column for two-stage methods).
pub fn inference_metrics_of(labels: &[Vec<usize>], dataset: &CrowdDataset) -> EvalMetrics {
    let gold: Vec<Vec<usize>> = dataset.train.iter().map(|i| i.gold.clone()).collect();
    match dataset.task {
        TaskKind::Classification => {
            let pred: Vec<usize> = labels.iter().map(|l| l[0]).collect();
            let flat: Vec<usize> = gold.iter().map(|g| g[0]).collect();
            EvalMetrics::from_accuracy(lncl_crowd::metrics::accuracy(&pred, &flat))
        }
        TaskKind::SequenceTagging => {
            let prf = lncl_crowd::metrics::span_f1(labels, &gold);
            EvalMetrics {
                accuracy: lncl_crowd::metrics::token_accuracy(labels, &gold),
                precision: prf.precision,
                recall: prf.recall,
                f1: prf.f1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
    use lncl_crowd::truth::{MajorityVote, TruthInference};
    use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};

    fn tiny() -> (CrowdDataset, SentimentCnn, TrainConfig) {
        let dataset = generate_sentiment(&SentimentDatasetConfig {
            train_size: 400,
            dev_size: 150,
            test_size: 150,
            num_annotators: 15,
            filler_vocab: 40,
            seed: 0,
            ..SentimentDatasetConfig::tiny()
        });
        let mut rng = TensorRng::seed_from_u64(0);
        let model = SentimentCnn::new(
            SentimentCnnConfig {
                vocab_size: dataset.vocab_size(),
                embedding_dim: 16,
                windows: vec![2, 3],
                filters_per_window: 8,
                dropout_keep: 0.7,
                num_classes: 2,
            },
            &mut rng,
        );
        let config = TrainConfig::fast(12);
        (dataset, model, config)
    }

    #[test]
    fn one_hot_targets_are_valid() {
        let t = one_hot_targets(&[vec![1, 0]], 3);
        assert_eq!(t[0].row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(t[0].row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn gold_training_beats_chance() {
        let (dataset, mut model, config) = tiny();
        let report = train_supervised(&mut model, &dataset, &gold_targets(&dataset), &config);
        assert!(report.epochs_run >= 1);
        let acc = evaluate_split(
            &model,
            &dataset.test,
            dataset.task,
            PredictionMode::Student,
            &crate::distill::TaskRules::None,
            0.0,
        )
        .accuracy;
        assert!(acc > 0.65, "gold-trained classifier should beat chance clearly, got {acc}");
    }

    #[test]
    fn mv_classifier_pipeline_runs() {
        let (dataset, mut model, config) = tiny();
        let view = dataset.annotation_view();
        let mv = MajorityVote.infer(&view);
        let labels = mv.hard_by_instance(&view);
        let inference = inference_metrics_of(&labels, &dataset);
        assert!(inference.accuracy > 0.7, "MV inference should be decent: {}", inference.accuracy);
        let targets = one_hot_targets(&labels, dataset.num_classes);
        let report = train_supervised(&mut model, &dataset, &targets, &config);
        assert!(!report.loss_history.is_empty());
        assert!(report.loss_history.last().unwrap() < &report.loss_history[0]);
    }

    #[test]
    #[should_panic]
    fn target_count_mismatch_panics() {
        let (dataset, mut model, config) = tiny();
        let _ = train_supervised(&mut model, &dataset, &[], &config);
    }
}
