//! The unified method API: one trait ([`CrowdMethod`]), a string-keyed
//! [`MethodRegistry`] enumerating every compared method of the paper, and the
//! [`RunContext`] that carries the shared training configuration and model
//! factory.
//!
//! Before this module existed, every compared method (Tables II–IV) was a
//! bespoke free function with hand-threaded generics in the bench harness;
//! adding a scenario meant editing the harness in N places.  Now the harness,
//! the examples and any future frontend program against a single polymorphic
//! surface:
//!
//! ```no_run
//! use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
//! use logic_lncl::method::{Family, MethodRegistry, RunContext};
//! use logic_lncl::TrainConfig;
//!
//! let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
//! let ctx = RunContext::for_dataset(&dataset, TrainConfig::fast(5));
//! let registry = MethodRegistry::standard();
//!
//! // look one method up by name …
//! let rows = registry.get("dawid-skene").unwrap().run(&dataset, &ctx);
//! println!("{}: {:?}", rows[0].method, rows[0].inference);
//!
//! // … or loop over a whole family, skipping methods the task does not support
//! for method in registry.family(Family::TruthInference) {
//!     if method.descriptor().supports(dataset.task) {
//!         for row in method.run(&dataset, &ctx) {
//!             println!("{row:?}");
//!         }
//!     }
//! }
//! ```

pub mod adapters;

use crate::config::TrainConfig;
use crate::report::MethodResult;
use lncl_crowd::{CrowdDataset, TaskKind};
use lncl_nn::models::{AnyModel, NerConvGru, NerConvGruConfig, SentimentCnn, SentimentCnnConfig};
use lncl_tensor::TensorRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use adapters::{
    AblationMethod, AggNet, CrowdLayerMethod, DlDnMethod, GoldUpperBound, LogicLnclMethod, LogicLnclWindowedMethod,
    TruthOnly, TwoStage,
};

/// Method families mirroring the blocks of the paper's result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Label-aggregation-only methods (MV, DS, GLAD, …): the "Truth
    /// Inference" blocks of Tables II/III.
    TruthInference,
    /// Two-stage pipelines: aggregate, then train a classifier on the hard
    /// labels (MV-Classifier, GLAD-Classifier).
    TwoStage,
    /// One-stage neural EM without rules (AggNet; its inference column
    /// doubles as the Raykar row).
    NeuralEm,
    /// Crowd-layer variants of Rodrigues & Pereira (CL (MW) / (VW) / (VW-B)).
    CrowdLayer,
    /// Per-annotator network ensembles of Guan et al. (DL-DN / DL-WDN).
    DlDn,
    /// The Gold upper bound (supervised training on the true labels).
    Gold,
    /// Logic-LNCL itself (student + teacher outputs).
    LogicLncl,
    /// The Table-IV ablation variants.
    Ablation,
}

impl Family {
    /// All families in table order.
    pub fn all() -> [Family; 8] {
        [
            Family::TruthInference,
            Family::TwoStage,
            Family::NeuralEm,
            Family::CrowdLayer,
            Family::DlDn,
            Family::Gold,
            Family::LogicLncl,
            Family::Ablation,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::TruthInference => "truth-inference",
            Family::TwoStage => "two-stage",
            Family::NeuralEm => "neural-em",
            Family::CrowdLayer => "crowd-layer",
            Family::DlDn => "dl-dn",
            Family::Gold => "gold",
            Family::LogicLncl => "logic-lncl",
            Family::Ablation => "ablation",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which task kinds a method can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSupport {
    /// Sentence classification only (e.g. GLAD, PM, CATD).
    Classification,
    /// Sequence tagging only (e.g. HMM-Crowd, BSC-seq).
    SequenceTagging,
    /// Both tasks.
    Both,
}

impl TaskSupport {
    /// Whether a task kind is supported.
    pub fn supports(&self, task: TaskKind) -> bool {
        match self {
            TaskSupport::Both => true,
            TaskSupport::Classification => task == TaskKind::Classification,
            TaskSupport::SequenceTagging => task == TaskKind::SequenceTagging,
        }
    }
}

/// Static description of a method: its registry key, its display label for
/// the paper's tables, the family it belongs to and the tasks it supports.
#[derive(Debug, Clone)]
pub struct MethodDescriptor {
    /// Stable kebab-case registry key (`"dawid-skene"`, `"cl-mw"`, …).
    pub name: String,
    /// Display label matching the paper's tables (`"DS"`, `"CL (MW)"`, …).
    pub label: String,
    /// Table block the method belongs to.
    pub family: Family,
    /// Task support.
    pub tasks: TaskSupport,
}

impl MethodDescriptor {
    /// Creates a descriptor.
    pub fn new(name: impl Into<String>, label: impl Into<String>, family: Family, tasks: TaskSupport) -> Self {
        Self { name: name.into(), label: label.into(), family, tasks }
    }

    /// Whether the method can run on `task`.
    pub fn supports(&self, task: TaskKind) -> bool {
        self.tasks.supports(task)
    }
}

/// Type-erased model factory: builds a freshly initialised classifier for a
/// seed.  Shared (via [`Arc`]) so a context can be cloned across threads.
pub type ModelFactory = dyn Fn(u64) -> AnyModel + Send + Sync;

/// Everything a method needs besides the dataset: the training
/// configuration and a way to construct the dataset-appropriate classifier.
#[derive(Clone)]
pub struct RunContext {
    /// Shared training configuration (seed, epochs, optimiser, schedule …).
    pub config: TrainConfig,
    model_factory: Arc<ModelFactory>,
}

impl RunContext {
    /// Creates a context from a configuration and a model factory.
    pub fn new(config: TrainConfig, model_factory: impl Fn(u64) -> AnyModel + Send + Sync + 'static) -> Self {
        Self { config, model_factory: Arc::new(model_factory) }
    }

    /// A context with the default reduced-width architecture for the
    /// dataset's task (the widths used throughout the bench harness's
    /// `small` scale).  Frontends with custom architectures use
    /// [`RunContext::new`].
    pub fn for_dataset(dataset: &CrowdDataset, config: TrainConfig) -> Self {
        let task = dataset.task;
        let vocab_size = dataset.vocab_size();
        let num_classes = dataset.num_classes;
        Self::new(config, move |seed| {
            let mut rng = TensorRng::seed_from_u64(seed);
            match task {
                TaskKind::Classification => AnyModel::Sentiment(SentimentCnn::new(
                    SentimentCnnConfig {
                        vocab_size,
                        embedding_dim: 24,
                        windows: vec![3, 4, 5],
                        filters_per_window: 12,
                        dropout_keep: 0.7,
                        num_classes,
                    },
                    &mut rng,
                )),
                TaskKind::SequenceTagging => AnyModel::Ner(NerConvGru::new(
                    NerConvGruConfig {
                        vocab_size,
                        embedding_dim: 20,
                        conv_window: 5,
                        conv_features: 24,
                        gru_hidden: 20,
                        dropout_keep: 0.7,
                        num_classes,
                    },
                    &mut rng,
                )),
            }
        })
    }

    /// Builds a fresh model for `seed`.
    pub fn model(&self, seed: u64) -> AnyModel {
        (self.model_factory)(seed)
    }

    /// The same factory with a different training configuration.
    pub fn with_config(&self, config: TrainConfig) -> Self {
        Self { config, model_factory: Arc::clone(&self.model_factory) }
    }
}

/// One compared method of the paper behind a uniform, trait-object-safe
/// interface.  `run` trains / infers from scratch and returns the result
/// rows the method contributes to a table (most methods contribute one;
/// Logic-LNCL contributes its student and teacher rows from a single
/// training run).
pub trait CrowdMethod: Send + Sync {
    /// Static description (registry key, display label, family, tasks).
    fn descriptor(&self) -> MethodDescriptor;

    /// Runs the method on a dataset and returns its table rows.
    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult>;

    /// Runs the method's truth-inference stage and returns its per-unit
    /// posterior over classes on the training split, one `K`-length row per
    /// unit in [`AnnotationView`](lncl_crowd::AnnotationView) order.
    ///
    /// Methods without an explicit truth-inference stage read out the best
    /// normalised proxy they have: the crowd-layer variants return the
    /// trained backbone's softmax on the training split, DL-DN/DL-WDN the
    /// ensemble's weighted-average softmax.  Only the Gold upper bound
    /// returns `None` — it consumes the truth, so a "posterior" would be
    /// vacuous.  The robustness suite uses this hook to assert posterior
    /// invariants (rows normalised, entries in `[0, 1]`,
    /// annotator-permutation invariance) uniformly across the registry.
    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        let _ = (dataset, ctx);
        None
    }
}

/// String-keyed registry of every compared method.
///
/// Keys are the kebab-case [`MethodDescriptor::name`]s; [`MethodRegistry::standard`]
/// pre-populates all ~17 compared methods of the paper (plus the ablation
/// variants), so the table/figure binaries are data-driven loops over
/// registry lookups.
#[derive(Default)]
pub struct MethodRegistry {
    methods: BTreeMap<String, Box<dyn CrowdMethod>>,
}

impl MethodRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full registry of compared methods: the 8 truth-inference
    /// baselines, the two-stage classifiers, AggNet, the crowd-layer
    /// variants (with and without MV pre-training), DL-DN/WDN, the Gold
    /// upper bound, Logic-LNCL and the Table-IV ablation variants.
    pub fn standard() -> Self {
        use lncl_crowd::truth::{BscSeq, Catd, DawidSkene, DsWindowed, Glad, HmmCrowd, Ibcc, MajorityVote, Pm};

        let mut registry = Self::new();
        // truth inference only
        registry.register(TruthOnly::new("mv", MajorityVote, TaskSupport::Both));
        registry.register(TruthOnly::new("dawid-skene", DawidSkene::default(), TaskSupport::Both));
        registry.register(TruthOnly::new("ds-windowed", DsWindowed::default(), TaskSupport::Both));
        registry.register(TruthOnly::new("glad", Glad::default(), TaskSupport::Classification));
        registry.register(TruthOnly::new("ibcc", Ibcc::default(), TaskSupport::Both));
        registry.register(TruthOnly::new("pm", Pm::default(), TaskSupport::Classification));
        registry.register(TruthOnly::new("catd", Catd::default(), TaskSupport::Classification));
        registry.register(TruthOnly::new("hmm-crowd", HmmCrowd::default(), TaskSupport::SequenceTagging));
        registry.register(TruthOnly::new("bsc-seq", BscSeq::default(), TaskSupport::SequenceTagging));
        // two-stage classifiers
        registry.register(TwoStage::new("mv-classifier", "MV-Classifier", MajorityVote, TaskSupport::Both));
        registry.register(TwoStage::new(
            "glad-classifier",
            "GLAD-Classifier",
            Glad::default(),
            TaskSupport::Classification,
        ));
        // one-stage neural baselines
        registry.register(AggNet);
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::VectorWeight, 0));
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::VectorWeightBias, 0));
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::MatrixWeight, 0));
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::VectorWeight, 2));
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::VectorWeightBias, 2));
        registry.register(CrowdLayerMethod::new(crate::baselines::CrowdLayerKind::MatrixWeight, 2));
        registry.register(DlDnMethod::new(crate::baselines::DlDnKind::Uniform));
        registry.register(DlDnMethod::new(crate::baselines::DlDnKind::Weighted));
        // bounds and the paper's model
        registry.register(GoldUpperBound);
        registry.register(LogicLnclMethod);
        registry.register(LogicLnclWindowedMethod);
        // Table-IV ablation variants (`Full` is the logic-lncl entry above)
        for variant in crate::ablation::AblationVariant::all() {
            if variant != crate::ablation::AblationVariant::Full {
                registry.register(AblationMethod::new(variant));
            }
        }
        registry
    }

    /// Adds a method.  Panics if its descriptor name is already taken —
    /// registry keys must be unique.
    pub fn register(&mut self, method: impl CrowdMethod + 'static) {
        let name = method.descriptor().name;
        let previous = self.methods.insert(name.clone(), Box::new(method));
        assert!(previous.is_none(), "duplicate method registration: {name}");
    }

    /// Looks a method up by registry key.
    pub fn get(&self, name: &str) -> Option<&dyn CrowdMethod> {
        self.methods.get(name).map(|m| m.as_ref())
    }

    /// All methods of a family, in key order.
    pub fn family(&self, family: Family) -> Vec<&dyn CrowdMethod> {
        self.iter().filter(|m| m.descriptor().family == family).collect()
    }

    /// All methods supporting a task kind, in key order.
    pub fn supporting(&self, task: TaskKind) -> Vec<&dyn CrowdMethod> {
        self.iter().filter(|m| m.descriptor().supports(task)).collect()
    }

    /// Iterates over every method in key order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn CrowdMethod> {
        self.methods.values().map(|m| m.as_ref())
    }

    /// All registry keys, sorted.
    pub fn names(&self) -> Vec<String> {
        self.methods.keys().cloned().collect()
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True when no methods are registered.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Convenience: looks a method up and runs it.  Returns `None` for an
    /// unknown key.
    pub fn run(&self, name: &str, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<MethodResult>> {
        self.get(name).map(|m| m.run(dataset, ctx))
    }
}

impl fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodRegistry").field("methods", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};

    #[test]
    fn standard_registry_enumerates_all_compared_methods() {
        let registry = MethodRegistry::standard();
        assert!(registry.len() >= 15, "paper compares ~17 methods, registry has {}", registry.len());
        for key in [
            "mv",
            "dawid-skene",
            "ds-windowed",
            "glad",
            "ibcc",
            "pm",
            "catd",
            "hmm-crowd",
            "bsc-seq",
            "mv-classifier",
            "glad-classifier",
            "aggnet",
            "cl-mw",
            "cl-vw",
            "cl-vw-b",
            "dl-dn",
            "dl-wdn",
            "gold",
            "logic-lncl",
            "logic-lncl-windowed",
        ] {
            assert!(registry.get(key).is_some(), "missing standard method {key:?}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate method registration")]
    fn duplicate_registration_panics() {
        let mut registry = MethodRegistry::new();
        registry.register(adapters::GoldUpperBound);
        registry.register(adapters::GoldUpperBound);
    }

    #[test]
    fn task_support_filters() {
        assert!(TaskSupport::Both.supports(TaskKind::Classification));
        assert!(TaskSupport::Both.supports(TaskKind::SequenceTagging));
        assert!(TaskSupport::Classification.supports(TaskKind::Classification));
        assert!(!TaskSupport::Classification.supports(TaskKind::SequenceTagging));
        assert!(!TaskSupport::SequenceTagging.supports(TaskKind::Classification));

        let registry = MethodRegistry::standard();
        let ner_methods = registry.supporting(TaskKind::SequenceTagging);
        assert!(ner_methods.iter().all(|m| m.descriptor().supports(TaskKind::SequenceTagging)));
        assert!(ner_methods.iter().any(|m| m.descriptor().name == "hmm-crowd"));
        assert!(!ner_methods.iter().any(|m| m.descriptor().name == "glad"));
    }

    #[test]
    fn run_context_builds_task_appropriate_models() {
        let sentiment = generate_sentiment(&SentimentDatasetConfig::tiny());
        let ctx = RunContext::for_dataset(&sentiment, TrainConfig::fast(1));
        assert!(matches!(ctx.model(3), AnyModel::Sentiment(_)));

        let ner = generate_ner(&NerDatasetConfig::tiny());
        let ctx = RunContext::for_dataset(&ner, TrainConfig::fast(1));
        assert!(matches!(ctx.model(3), AnyModel::Ner(_)));
    }

    #[test]
    fn with_config_keeps_the_factory() {
        let sentiment = generate_sentiment(&SentimentDatasetConfig::tiny());
        let ctx = RunContext::for_dataset(&sentiment, TrainConfig::fast(1));
        let faster = ctx.with_config(TrainConfig::fast(1).with_epochs(2));
        assert_eq!(faster.config.epochs, 2);
        assert!(matches!(faster.model(0), AnyModel::Sentiment(_)));
    }

    #[test]
    fn family_display_names_are_stable() {
        assert_eq!(Family::TruthInference.to_string(), "truth-inference");
        assert_eq!(Family::all().len(), 8);
    }
}
