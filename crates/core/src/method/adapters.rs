//! [`CrowdMethod`] adapters for every compared method of the paper.
//!
//! Each adapter owns its method-specific knobs (crowd-layer kind,
//! pre-training epochs, ablation variant, …) and reads everything shared —
//! training configuration and model factory — from the [`RunContext`], so
//! the bench harness and the examples construct methods exclusively through
//! the [`MethodRegistry`](super::MethodRegistry).

use super::{CrowdMethod, Family, MethodDescriptor, RunContext, TaskSupport};
use crate::ablation::{other_rules, paper_rules, AblationVariant};
use crate::baselines::two_stage::{gold_targets, inference_metrics_of, one_hot_targets, train_supervised};
use crate::baselines::{train_dl_dn, CrowdLayerKind, CrowdLayerTrainer, DlDnConfig, DlDnKind};
use crate::config::TrainConfig;
use crate::distill::TaskRules;
use crate::predict::{evaluate_split, PredictionMode};
use crate::report::{EvalMetrics, MethodResult};
use crate::trainer::LogicLncl;
use lncl_crowd::truth::{DawidSkene, Glad, MajorityVote, TruthEstimate, TruthInference};
use lncl_crowd::{CrowdDataset, TaskKind};

/// Flattens trainer posteriors (`q_f`) into one row per unit, the layout
/// [`CrowdMethod::infer_posteriors`] returns.  The backing matrix stores
/// all instances contiguously in unit order, so chunking by `K` covers
/// every unit.
fn qf_rows(qf: &crate::posterior::FlatPosteriors) -> Vec<Vec<f32>> {
    qf.data().as_slice().chunks(qf.num_classes()).map(<[f32]>::to_vec).collect()
}

/// Builds and trains the shared neural-EM trainer: `TaskRules::None` gives
/// AggNet / w/o-Rule, [`paper_rules`] gives Logic-LNCL, [`other_rules`]
/// the rules ablation.  Used by both `run` and `infer_posteriors` of those
/// adapters, so the posterior the robustness suite validates always comes
/// from the same construction the tables report.
fn train_lncl(
    dataset: &CrowdDataset,
    ctx: &RunContext,
    rules: TaskRules,
) -> (crate::trainer::LogicLncl<lncl_nn::models::AnyModel>, crate::report::TrainReport) {
    let mut trainer =
        LogicLncl::builder(ctx.model(ctx.config.seed)).rules(rules).config(ctx.config.clone()).build(dataset);
    let report = trainer.train(dataset);
    (trainer, report)
}

/// Converts a flat truth estimate into per-instance soft-target matrices
/// (`units x K`), the layout consumed by the fixed-posterior trainer mode.
pub fn estimate_to_targets(estimate: &TruthEstimate, dataset: &CrowdDataset) -> Vec<lncl_tensor::Matrix> {
    let view = dataset.annotation_view();
    let mut targets: Vec<lncl_tensor::Matrix> =
        dataset.train.iter().map(|inst| lncl_tensor::Matrix::zeros(inst.num_units(), dataset.num_classes)).collect();
    let mut cursor = vec![0usize; targets.len()];
    for (u, post) in estimate.posteriors.iter().enumerate() {
        let i = view.unit_instance[u];
        targets[i].row_mut(cursor[i]).copy_from_slice(post);
        cursor[i] += 1;
    }
    targets
}

/// A truth-inference baseline contributing an inference-only table row
/// (the "Truth Inference" blocks of Tables II/III).
pub struct TruthOnly<I: TruthInference + Send + Sync> {
    name: String,
    inner: I,
    tasks: TaskSupport,
}

impl<I: TruthInference + Send + Sync> TruthOnly<I> {
    /// Wraps a truth-inference method under a registry key.
    pub fn new(name: impl Into<String>, inner: I, tasks: TaskSupport) -> Self {
        Self { name: name.into(), inner, tasks }
    }
}

impl<I: TruthInference + Send + Sync> CrowdMethod for TruthOnly<I> {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new(self.name.clone(), self.inner.name(), Family::TruthInference, self.tasks)
    }

    fn run(&self, dataset: &CrowdDataset, _ctx: &RunContext) -> Vec<MethodResult> {
        let view = dataset.annotation_view();
        let estimate = self.inner.infer(&view);
        let hard = estimate.hard_by_instance(&view);
        vec![MethodResult::new(self.inner.name(), EvalMetrics::default(), Some(inference_metrics_of(&hard, dataset)))]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, _ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        Some(self.inner.infer(&dataset.annotation_view()).posteriors)
    }
}

/// A two-stage baseline: aggregate with the wrapped truth-inference method,
/// then train the classifier on the hard labels (MV-Classifier,
/// GLAD-Classifier).
pub struct TwoStage<I: TruthInference + Send + Sync> {
    name: String,
    label: String,
    inference: I,
    tasks: TaskSupport,
}

impl<I: TruthInference + Send + Sync> TwoStage<I> {
    /// Wraps a truth-inference method into a two-stage pipeline.
    pub fn new(name: impl Into<String>, label: impl Into<String>, inference: I, tasks: TaskSupport) -> Self {
        Self { name: name.into(), label: label.into(), inference, tasks }
    }
}

/// The two-stage pipeline shared by the [`TwoStage`] adapter and the `MV-t`
/// ablation: aggregate, train supervised on the hard labels, then evaluate
/// the classifier under the given output mode.
fn run_two_stage_pipeline(
    inference: &dyn TruthInference,
    label: &str,
    mode: PredictionMode,
    rules: &TaskRules,
    regularization_c: f32,
    dataset: &CrowdDataset,
    ctx: &RunContext,
) -> Vec<MethodResult> {
    let view = dataset.annotation_view();
    let estimate = inference.infer(&view);
    let hard = estimate.hard_by_instance(&view);
    let inference_metrics = inference_metrics_of(&hard, dataset);
    let targets = one_hot_targets(&hard, dataset.num_classes);
    let mut model = ctx.model(ctx.config.seed);
    train_supervised(&mut model, dataset, &targets, &ctx.config);
    let prediction = evaluate_split(&model, &dataset.test, dataset.task, mode, rules, regularization_c);
    vec![MethodResult::new(label, prediction, Some(inference_metrics))]
}

impl<I: TruthInference + Send + Sync> CrowdMethod for TwoStage<I> {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new(self.name.clone(), self.label.clone(), Family::TwoStage, self.tasks)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        run_two_stage_pipeline(
            &self.inference,
            &self.label,
            PredictionMode::Student,
            &TaskRules::None,
            0.0,
            dataset,
            ctx,
        )
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, _ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        Some(self.inference.infer(&dataset.annotation_view()).posteriors)
    }
}

/// The Gold upper bound: supervised training on the true labels.
pub struct GoldUpperBound;

impl CrowdMethod for GoldUpperBound {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new("gold", "Gold", Family::Gold, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let mut model = ctx.model(ctx.config.seed);
        train_supervised(&mut model, dataset, &gold_targets(dataset), &ctx.config);
        let prediction =
            evaluate_split(&model, &dataset.test, dataset.task, PredictionMode::Student, &TaskRules::None, 0.0);
        vec![MethodResult::new("Gold", prediction, Some(EvalMetrics::from_accuracy(1.0)))]
    }
}

/// The EM baseline without rules (AggNet with a neural classifier; the
/// inference column doubles as the Raykar row of Table II).
pub struct AggNet;

impl CrowdMethod for AggNet {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new("aggnet", "AggNet", Family::NeuralEm, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let (trainer, report) = train_lncl(dataset, ctx, TaskRules::None);
        let prediction = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
        vec![MethodResult::new("AggNet", prediction, Some(report.inference))]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        Some(qf_rows(train_lncl(dataset, ctx, TaskRules::None).0.qf()))
    }
}

/// One crowd-layer variant (Rodrigues & Pereira 2018), optionally with a few
/// epochs of majority-voting pre-training (the `MW, 5` configuration of
/// Table III).
pub struct CrowdLayerMethod {
    kind: CrowdLayerKind,
    pretrain_epochs: usize,
}

impl CrowdLayerMethod {
    /// Creates the variant; `pretrain_epochs == 0` disables pre-training.
    pub fn new(kind: CrowdLayerKind, pretrain_epochs: usize) -> Self {
        Self { kind, pretrain_epochs }
    }

    fn key(&self) -> String {
        let base = match self.kind {
            CrowdLayerKind::MatrixWeight => "cl-mw",
            CrowdLayerKind::VectorWeight => "cl-vw",
            CrowdLayerKind::VectorWeightBias => "cl-vw-b",
        };
        if self.pretrain_epochs > 0 {
            // the epoch count is part of the key so differently pre-trained
            // variants of the same kind can coexist in one registry
            format!("{base}+pre{}", self.pretrain_epochs)
        } else {
            base.to_string()
        }
    }

    fn label(&self) -> String {
        if self.pretrain_epochs > 0 {
            format!("{} [{} pretrain]", self.kind.name(), self.pretrain_epochs)
        } else {
            self.kind.name().to_string()
        }
    }
}

impl CrowdMethod for CrowdLayerMethod {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new(self.key(), self.label(), Family::CrowdLayer, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let model = ctx.model(ctx.config.seed);
        let mut trainer = CrowdLayerTrainer::new(model, dataset, self.kind, ctx.config.clone(), self.pretrain_epochs);
        let inference = trainer.train(dataset);
        let prediction = trainer.evaluate(&dataset.test, dataset.task);
        vec![MethodResult::new(self.label(), prediction, Some(inference))]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        // same construction as `run`: the trained backbone's softmax over
        // the true class is the crowd layer's truth estimate
        let model = ctx.model(ctx.config.seed);
        let mut trainer = CrowdLayerTrainer::new(model, dataset, self.kind, ctx.config.clone(), self.pretrain_epochs);
        trainer.train(dataset);
        Some(trainer.truth_posteriors(dataset))
    }
}

/// DL-DN / DL-WDN (Guan et al. 2018): one network per annotator with
/// (weighted) prediction averaging.
pub struct DlDnMethod {
    kind: DlDnKind,
}

impl DlDnMethod {
    /// Creates the variant.
    pub fn new(kind: DlDnKind) -> Self {
        Self { kind }
    }

    /// The per-annotator training configuration shared by `run` and
    /// `infer_posteriors` (kept short: each annotator sees only a slice of
    /// the data).
    fn dl_config(ctx: &RunContext) -> DlDnConfig {
        DlDnConfig {
            train: TrainConfig { epochs: (ctx.config.epochs / 2).max(3), ..ctx.config.clone() },
            min_instances: 20,
            max_annotators: 10,
        }
    }
}

impl CrowdMethod for DlDnMethod {
    fn descriptor(&self) -> MethodDescriptor {
        let key = match self.kind {
            DlDnKind::Uniform => "dl-dn",
            DlDnKind::Weighted => "dl-wdn",
        };
        MethodDescriptor::new(key, self.kind.name(), Family::DlDn, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let (prediction, _) = train_dl_dn(dataset, self.kind, &Self::dl_config(ctx), |seed| ctx.model(seed));
        vec![MethodResult::new(self.kind.name(), prediction, None)]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        // the ensemble's weighted-average softmax is its (normalised)
        // estimate of the truth on the training split
        Some(crate::baselines::train_dl_dn_posteriors(dataset, self.kind, &Self::dl_config(ctx), |seed| {
            ctx.model(seed)
        }))
    }
}

/// The full Logic-LNCL: one training run contributing the student and
/// teacher rows.
pub struct LogicLnclMethod;

impl CrowdMethod for LogicLnclMethod {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new("logic-lncl", "Logic-LNCL", Family::LogicLncl, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let (trainer, report) = train_lncl(dataset, ctx, paper_rules(dataset));
        let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
        let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
        vec![
            MethodResult::new("Logic-LNCL-student", student, Some(report.inference)),
            MethodResult::new("Logic-LNCL-teacher", teacher, Some(report.inference)),
        ]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        Some(qf_rows(train_lncl(dataset, ctx, paper_rules(dataset)).0.qf()))
    }
}

/// Logic-LNCL with the **stream-windowed** E-step
/// ([`crate::annotators::WindowedAnnotatorModel`]): every crowd label is
/// judged by its annotator's confusion matrix in the window of their stream
/// it was produced in, so the method tracks drifting annotators
/// ([`lncl_crowd::scenario::DriftSchedule`]) that the pooled Eq. 12
/// averages away.
pub struct LogicLnclWindowedMethod;

impl LogicLnclWindowedMethod {
    /// Maximum instances per estimation window — shared with
    /// [`DsWindowed`](lncl_crowd::truth::DsWindowed) so both windowed
    /// registry methods run the same windowing scheme.
    pub const WINDOW: usize = lncl_crowd::truth::DsWindowed::DEFAULT_WINDOW;
    /// Cross-window count decay in `(0, 1]`, shared like
    /// [`LogicLnclWindowedMethod::WINDOW`].
    pub const DECAY: f32 = lncl_crowd::truth::DsWindowed::DEFAULT_DECAY;

    fn train(
        dataset: &CrowdDataset,
        ctx: &RunContext,
    ) -> (crate::trainer::LogicLncl<lncl_nn::models::AnyModel>, crate::report::TrainReport) {
        let mut trainer = LogicLncl::builder(ctx.model(ctx.config.seed))
            .rules(paper_rules(dataset))
            .config(ctx.config.clone())
            .windowed_confusions(Self::WINDOW, Self::DECAY)
            .build(dataset);
        let report = trainer.train(dataset);
        (trainer, report)
    }
}

impl CrowdMethod for LogicLnclWindowedMethod {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new("logic-lncl-windowed", "Logic-LNCL-W", Family::LogicLncl, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        let (trainer, report) = Self::train(dataset, ctx);
        let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
        vec![MethodResult::new("Logic-LNCL-W", student, Some(report.inference))]
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        Some(qf_rows(Self::train(dataset, ctx).0.qf()))
    }
}

/// One Table-IV ablation variant.  [`AblationVariant::Full`] delegates to
/// [`LogicLnclMethod`] (it is registered under `"logic-lncl"`).
pub struct AblationMethod {
    variant: AblationVariant,
}

impl AblationMethod {
    /// Creates the variant runner.
    pub fn new(variant: AblationVariant) -> Self {
        Self { variant }
    }

    fn key(&self) -> &'static str {
        match self.variant {
            AblationVariant::MvRule => "mv-rule",
            AblationVariant::GladRule => "glad-rule",
            AblationVariant::WithoutRule => "wo-rule",
            AblationVariant::MvTeacher => "mv-teacher",
            AblationVariant::OtherRules => "other-rules",
            AblationVariant::Full => "logic-lncl",
        }
    }
}

impl CrowdMethod for AblationMethod {
    fn descriptor(&self) -> MethodDescriptor {
        MethodDescriptor::new(self.key(), self.variant.name(), Family::Ablation, TaskSupport::Both)
    }

    fn run(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<MethodResult> {
        match self.variant {
            AblationVariant::Full => LogicLnclMethod.run(dataset, ctx),
            AblationVariant::WithoutRule => {
                let rows = AggNet.run(dataset, ctx);
                rows.into_iter().map(|r| MethodResult::new("w/o-Rule", r.prediction, r.inference)).collect()
            }
            AblationVariant::MvTeacher => {
                // MV-Classifier whose *test-time* prediction applies the rules.
                run_two_stage_pipeline(
                    &MajorityVote,
                    "MV-t",
                    PredictionMode::Teacher,
                    &paper_rules(dataset),
                    ctx.config.regularization_c,
                    dataset,
                    ctx,
                )
            }
            AblationVariant::MvRule | AblationVariant::GladRule => {
                let view = dataset.annotation_view();
                let estimate = if self.variant == AblationVariant::MvRule {
                    MajorityVote.infer(&view)
                } else if dataset.task == TaskKind::Classification {
                    Glad::default().infer(&view)
                } else {
                    // GLAD is not applicable to NER; the paper substitutes the
                    // AggNet estimate, which Dawid–Skene approximates here.
                    DawidSkene::default().infer(&view)
                };
                let fixed = estimate_to_targets(&estimate, dataset);
                let mut trainer = LogicLncl::builder(ctx.model(ctx.config.seed))
                    .rules(paper_rules(dataset))
                    .config(ctx.config.clone())
                    .fixed_posterior(fixed)
                    .build(dataset);
                let report = trainer.train(dataset);
                let prediction = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
                vec![MethodResult::new(self.variant.name(), prediction, Some(report.inference))]
            }
            AblationVariant::OtherRules => {
                let (trainer, report) = train_lncl(dataset, ctx, other_rules(dataset));
                let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
                let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
                vec![
                    MethodResult::new("our-other-rules-student", student, Some(report.inference)),
                    MethodResult::new("our-other-rules-teacher", teacher, Some(report.inference)),
                ]
            }
        }
    }

    fn infer_posteriors(&self, dataset: &CrowdDataset, ctx: &RunContext) -> Option<Vec<Vec<f32>>> {
        match self.variant {
            AblationVariant::Full => LogicLnclMethod.infer_posteriors(dataset, ctx),
            AblationVariant::WithoutRule => AggNet.infer_posteriors(dataset, ctx),
            // the fixed-posterior variants train against a frozen aggregation
            // estimate, which *is* their inferred truth posterior
            AblationVariant::MvTeacher | AblationVariant::MvRule => {
                Some(MajorityVote.infer(&dataset.annotation_view()).posteriors)
            }
            AblationVariant::GladRule => {
                let view = dataset.annotation_view();
                let estimate = if dataset.task == TaskKind::Classification {
                    Glad::default().infer(&view)
                } else {
                    DawidSkene::default().infer(&view)
                };
                Some(estimate.posteriors)
            }
            AblationVariant::OtherRules => Some(qf_rows(train_lncl(dataset, ctx, other_rules(dataset)).0.qf())),
        }
    }
}
