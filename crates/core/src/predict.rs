//! Student / teacher prediction (the paper's `Logic-LNCL-student` and
//! `Logic-LNCL-teacher` output variants) and split-level evaluation.

use crate::distill::TaskRules;
use crate::report::EvalMetrics;
use lncl_crowd::{metrics, Instance, TaskKind};
use lncl_logic::{project_distribution, project_sequence};
use lncl_nn::InstanceClassifier;
use lncl_tensor::stats;

/// Which output to use at test time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionMode {
    /// The trained network `p(t | x; Θ_NN)`.
    Student,
    /// The network prediction adapted with the logic rules through Eq. 15
    /// (replacing `q_a` by `p(t|x)`), as described in "Implementation
    /// details: employ q_b(t) at test phase".
    Teacher,
}

/// Predicts the per-unit class probabilities for one instance under the
/// chosen mode.
pub fn predict_proba<M: InstanceClassifier>(
    model: &M,
    tokens: &[usize],
    mode: PredictionMode,
    rules: &TaskRules,
    regularization_c: f32,
) -> Vec<Vec<f32>> {
    let probs = model.predict_proba(tokens);
    let student: Vec<Vec<f32>> = (0..probs.rows()).map(|r| probs.row(r).to_vec()).collect();
    match (mode, rules) {
        (PredictionMode::Student, _) | (_, TaskRules::None) => student,
        (PredictionMode::Teacher, TaskRules::Classification(rules)) => {
            let clause = |clause_tokens: &[usize]| model.predict_proba(clause_tokens).row(0).to_vec();
            let penalties = lncl_logic::grounded_penalties(rules, tokens, &clause, student[0].len());
            vec![project_distribution(&student[0], &penalties, regularization_c)]
        }
        (PredictionMode::Teacher, TaskRules::Sequence(set)) => project_sequence(&student, set, regularization_c),
    }
}

/// Predicts hard labels for one instance.
pub fn predict_labels<M: InstanceClassifier>(
    model: &M,
    tokens: &[usize],
    mode: PredictionMode,
    rules: &TaskRules,
    regularization_c: f32,
) -> Vec<usize> {
    predict_proba(model, tokens, mode, rules, regularization_c).iter().map(|p| stats::argmax(p)).collect()
}

/// Evaluates a model on a dataset split (dev or test), producing accuracy
/// for classification tasks and strict span P/R/F1 (plus token accuracy) for
/// sequence tasks.
pub fn evaluate_split<M: InstanceClassifier>(
    model: &M,
    split: &[Instance],
    task: TaskKind,
    mode: PredictionMode,
    rules: &TaskRules,
    regularization_c: f32,
) -> EvalMetrics {
    let predictions: Vec<Vec<usize>> =
        split.iter().map(|inst| predict_labels(model, &inst.tokens, mode, rules, regularization_c)).collect();
    evaluate_predictions(&predictions, split, task)
}

/// Evaluates already-computed hard predictions against a split's gold labels.
pub fn evaluate_predictions(predictions: &[Vec<usize>], split: &[Instance], task: TaskKind) -> EvalMetrics {
    let gold: Vec<Vec<usize>> = split.iter().map(|i| i.gold.clone()).collect();
    match task {
        TaskKind::Classification => {
            let flat_pred: Vec<usize> = predictions.iter().map(|p| p[0]).collect();
            let flat_gold: Vec<usize> = gold.iter().map(|g| g[0]).collect();
            EvalMetrics::from_accuracy(metrics::accuracy(&flat_pred, &flat_gold))
        }
        TaskKind::SequenceTagging => {
            let prf = metrics::span_f1(predictions, &gold);
            let token_acc = metrics::token_accuracy(predictions, &gold);
            EvalMetrics { accuracy: token_acc, precision: prf.precision, recall: prf.recall, f1: prf.f1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_logic::rules::sentiment_but::SentimentContrastRule;
    use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
    use lncl_tensor::TensorRng;

    fn tiny_model() -> SentimentCnn {
        let mut rng = TensorRng::seed_from_u64(3);
        SentimentCnn::new(
            SentimentCnnConfig {
                vocab_size: 20,
                embedding_dim: 6,
                windows: vec![2],
                filters_per_window: 4,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn student_equals_model_probabilities() {
        let model = tiny_model();
        let p = predict_proba(&model, &[1, 2, 3], PredictionMode::Student, &TaskRules::None, 5.0);
        let direct = model.predict_proba(&[1, 2, 3]);
        assert!((p[0][0] - direct[(0, 0)]).abs() < 1e-6);
    }

    #[test]
    fn teacher_without_rules_falls_back_to_student() {
        let model = tiny_model();
        let s = predict_proba(&model, &[1, 2, 3], PredictionMode::Student, &TaskRules::None, 5.0);
        let t = predict_proba(&model, &[1, 2, 3], PredictionMode::Teacher, &TaskRules::None, 5.0);
        assert_eq!(s, t);
    }

    #[test]
    fn teacher_differs_on_but_sentences() {
        let model = tiny_model();
        let but = 9usize;
        let rules = TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(but))]);
        let tokens = vec![1, 2, but, 3, 4, 5];
        let s = predict_proba(&model, &tokens, PredictionMode::Student, &rules, 5.0);
        let t = predict_proba(&model, &tokens, PredictionMode::Teacher, &rules, 5.0);
        // the teacher projects the prediction towards the clause-B prediction,
        // so unless they already agree exactly the distributions differ.
        let moved = (s[0][0] - t[0][0]).abs() > 1e-6 || (s[0][1] - t[0][1]).abs() > 1e-6;
        let clause_probs = model.predict_proba(&[3, 4, 5]);
        let already_aligned = (clause_probs[(0, 0)] - s[0][0]).abs() < 1e-4;
        assert!(moved || already_aligned);
        // and still a distribution
        assert!((t[0].iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn evaluate_predictions_classification_accuracy() {
        use lncl_crowd::Instance;
        let split = vec![
            Instance { tokens: vec![1], gold: vec![1], crowd_labels: vec![] },
            Instance { tokens: vec![2], gold: vec![0], crowd_labels: vec![] },
        ];
        let metrics = evaluate_predictions(&[vec![1], vec![1]], &split, TaskKind::Classification);
        assert!((metrics.accuracy - 0.5).abs() < 1e-6);
    }

    #[test]
    fn evaluate_predictions_sequence_f1() {
        use lncl_crowd::Instance;
        let split = vec![Instance { tokens: vec![1, 2, 3], gold: vec![0, 1, 2], crowd_labels: vec![] }];
        let perfect = evaluate_predictions(&[vec![0, 1, 2]], &split, TaskKind::SequenceTagging);
        assert_eq!(perfect.f1, 1.0);
        let miss = evaluate_predictions(&[vec![0, 0, 0]], &split, TaskKind::SequenceTagging);
        assert_eq!(miss.f1, 0.0);
    }
}
