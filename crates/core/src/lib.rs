//! # logic-lncl
//!
//! A from-scratch Rust implementation of **Logic-LNCL** — *"Learning from
//! Noisy Crowd Labels with Logics"* (Chen, Sun, He & Chen, ICDE 2023) — an
//! EM-alike iterative logic-knowledge-distillation framework that trains a
//! neural classifier from noisy crowd labels while injecting first-order
//! soft logic rules.
//!
//! The crate provides:
//!
//! * [`method`] — the **unified method API**: the [`CrowdMethod`] trait
//!   (`descriptor()` + `run(dataset, ctx)`), the string-keyed
//!   [`MethodRegistry`] enumerating every compared method of the paper, and
//!   the [`RunContext`] carrying the shared configuration and model factory;
//! * [`trainer::LogicLncl`] — Algorithm 1: the pseudo-E-step (truth posterior
//!   `q_a` of Eq. 13, rule projection `q_b` of Eq. 15, interpolation `q_f` of
//!   Eq. 9) and the pseudo-M-step (classifier update of Eq. 8/10/11 and the
//!   closed-form annotator update of Eq. 12);
//! * [`config`] — the Table-I hyper-parameters (imitation schedule `k(t)`,
//!   regularisation strength `C`, optimisers, early stopping), with
//!   [`TrainConfig::builder`] for fluent construction;
//! * [`predict`] — the student (`p(t|x)`) and teacher (rule-adapted) output
//!   modes;
//! * [`baselines`] — the trainers behind the two-stage, crowd-layer and
//!   DL-DN/WDN adapters (constructed via the registry);
//! * [`ablation`] — the Table-IV variants;
//! * [`report`] — result records shared with the `lncl-bench` experiment
//!   harness.
//!
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root.)
//!
//! ## Training Logic-LNCL directly (builder API)
//!
//! ```no_run
//! use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
//! use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
//! use lncl_tensor::TensorRng;
//! use logic_lncl::ablation::paper_rules;
//! use logic_lncl::config::TrainConfig;
//! use logic_lncl::predict::PredictionMode;
//! use logic_lncl::trainer::LogicLncl;
//!
//! let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = SentimentCnn::new(
//!     SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() },
//!     &mut rng,
//! );
//! let mut trainer = LogicLncl::builder(model)
//!     .rules(paper_rules(&dataset))
//!     .config(TrainConfig::builder().epochs(5).build())
//!     .build(&dataset);
//! let report = trainer.train(&dataset);
//! let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
//! println!("teacher accuracy = {:.3} (dev best epoch {})", teacher.accuracy, report.best_epoch);
//! ```
//!
//! ## Running any compared method (registry API)
//!
//! Every method of Tables II–IV — truth inference, two-stage classifiers,
//! crowd layers, DL-DN, AggNet, Gold, Logic-LNCL and the ablation variants —
//! sits behind the same trait, so benchmark tables, examples and future
//! frontends are data-driven loops:
//!
//! ```no_run
//! use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
//! use logic_lncl::method::{Family, MethodRegistry, RunContext};
//! use logic_lncl::TrainConfig;
//!
//! let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
//! let ctx = RunContext::for_dataset(&dataset, TrainConfig::builder().epochs(5).build());
//! let registry = MethodRegistry::standard();
//! for method in registry.family(Family::TwoStage) {
//!     if method.descriptor().supports(dataset.task) {
//!         for row in method.run(&dataset, &ctx) {
//!             println!("{:<20} {:.3}", row.method, row.prediction.accuracy);
//!         }
//!     }
//! }
//! ```

pub mod ablation;
pub mod annotators;
pub mod baselines;
pub mod config;
pub mod distill;
pub mod method;
pub mod posterior;
pub mod predict;
pub mod report;
pub mod streaming;
pub mod trainer;

pub use ablation::{paper_rules, AblationVariant};
pub use annotators::AnnotatorModel;
pub use config::{ImitationSchedule, MStepObjective, OptimizerKind, TrainConfig, TrainConfigBuilder};
pub use distill::TaskRules;
pub use method::{CrowdMethod, Family, MethodDescriptor, MethodRegistry, RunContext, TaskSupport};
pub use predict::PredictionMode;
pub use report::{EvalMetrics, MethodResult, TrainReport};
pub use trainer::{LogicLncl, LogicLnclBuilder, PosteriorMode};
