//! # logic-lncl
//!
//! A from-scratch Rust implementation of **Logic-LNCL** — *"Learning from
//! Noisy Crowd Labels with Logics"* (Chen, Sun, He & Chen, ICDE 2023) — an
//! EM-alike iterative logic-knowledge-distillation framework that trains a
//! neural classifier from noisy crowd labels while injecting first-order
//! soft logic rules.
//!
//! The crate provides:
//!
//! * [`trainer::LogicLncl`] — Algorithm 1: the pseudo-E-step (truth posterior
//!   `q_a` of Eq. 13, rule projection `q_b` of Eq. 15, interpolation `q_f` of
//!   Eq. 9) and the pseudo-M-step (classifier update of Eq. 8/10/11 and the
//!   closed-form annotator update of Eq. 12);
//! * [`config`] — the Table-I hyper-parameters (imitation schedule `k(t)`,
//!   regularisation strength `C`, optimisers, early stopping);
//! * [`predict`] — the student (`p(t|x)`) and teacher (rule-adapted) output
//!   modes;
//! * [`baselines`] — MV-/GLAD-Classifier, the CL crowd-layer variants,
//!   DL-DN/WDN, and (via the trainer with rules disabled) Raykar/AggNet;
//! * [`ablation`] — the Table-IV variants;
//! * [`report`] — result records shared with the `lncl-bench` experiment
//!   harness.
//!
//! ```no_run
//! use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
//! use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
//! use lncl_tensor::TensorRng;
//! use logic_lncl::ablation::paper_rules;
//! use logic_lncl::config::TrainConfig;
//! use logic_lncl::predict::PredictionMode;
//! use logic_lncl::trainer::LogicLncl;
//!
//! let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = SentimentCnn::new(
//!     SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() },
//!     &mut rng,
//! );
//! let mut trainer = LogicLncl::new(model, &dataset, paper_rules(&dataset), TrainConfig::fast(5));
//! let report = trainer.train(&dataset);
//! let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
//! println!("teacher accuracy = {:.3} (dev best epoch {})", teacher.accuracy, report.best_epoch);
//! ```

pub mod ablation;
pub mod annotators;
pub mod baselines;
pub mod config;
pub mod distill;
pub mod posterior;
pub mod predict;
pub mod report;
pub mod trainer;

pub use ablation::{paper_rules, AblationVariant};
pub use annotators::AnnotatorModel;
pub use config::{ImitationSchedule, MStepObjective, OptimizerKind, TrainConfig};
pub use distill::TaskRules;
pub use predict::PredictionMode;
pub use report::{EvalMetrics, MethodResult, TrainReport};
pub use trainer::{LogicLncl, PosteriorMode};
