//! Huge-tier streaming initialisation: scenario generation fused with the
//! first pseudo-E-step.
//!
//! Algorithm 1 initialises `q_f` with majority voting (line 1) before the
//! EM loop starts.  Majority voting is per-unit local — a unit's posterior
//! is the normalised empirical distribution of its own labels — so the
//! first E-pass needs no cross-instance state and can be folded directly
//! into chunked generation: each [`ScenarioStream`] chunk is voted into a
//! flat posterior arena ([`FlatPosteriorsBuilder`]) and dropped.  Peak
//! memory is the arena (`total_units x K` floats) plus one chunk of
//! instances, never the corpus; the `huge` bench tier measures exactly
//! this (see `lncl-bench`'s `huge_stream` target and the peak-RSS gate).
//!
//! The fused pass is bitwise-identical to the batch pipeline
//! (`generate_scenario` → `MajorityVote` → arena assembly): the stream
//! emits the very instances the batch generator would build, and the vote
//! counts accumulate in the same label order.

use crate::posterior::{FlatPosteriors, FlatPosteriorsBuilder};
use lncl_crowd::scenario::{ScenarioConfig, ScenarioStream};
use lncl_crowd::CrowdDataset;
use lncl_tensor::stats;

/// Result of [`stream_mv_init`]: the majority-vote `q_f` arena plus the
/// corpus statistics a consumer would otherwise have to re-derive from the
/// (dropped) training instances.
#[derive(Debug, Clone)]
pub struct StreamedMvInit {
    /// Majority-vote posteriors for the whole training split, flat.
    pub qf: FlatPosteriors,
    /// The dataset shell: dev/test splits, vocabulary and class metadata,
    /// with an **empty** training split (the instances were consumed).
    pub shell: CrowdDataset,
    /// Total crowd labels consumed across the training split.
    pub crowd_labels: usize,
    /// Fraction of training units whose majority-vote argmax matches gold.
    pub mv_accuracy: f64,
}

/// Streams the scenario's training split in `chunk_size`-instance chunks,
/// folding each chunk into the majority-vote `q_f` arena (Algorithm 1,
/// line 1) and dropping it, then finishes the dev/test splits.  The full
/// training corpus never resides in memory.
pub fn stream_mv_init(config: &ScenarioConfig, chunk_size: usize) -> StreamedMvInit {
    assert!(chunk_size >= 1, "stream_mv_init: chunk size must be at least 1");
    let k = config.num_classes();
    let mut stream = ScenarioStream::new(config);
    let mut builder = FlatPosteriorsBuilder::new(k);
    let mut crowd_labels = 0usize;
    let mut correct = 0usize;
    let mut units = 0usize;
    while !stream.is_drained() {
        let chunk = stream.next_train_chunk(chunk_size);
        for inst in &chunk {
            let rows = builder.push_instance(inst.num_units());
            for cl in &inst.crowd_labels {
                crowd_labels += 1;
                for (u, &observed) in cl.labels.iter().enumerate() {
                    rows[u * k + observed] += 1.0;
                }
            }
            for (row, &gold) in rows.chunks_exact_mut(k).zip(&inst.gold) {
                stats::normalize_in_place(row);
                units += 1;
                if stats::argmax(row) == gold {
                    correct += 1;
                }
            }
        }
        // the chunk drops here — only the arena row block survives
    }
    let shell = stream.finish(Vec::new());
    let mv_accuracy = if units == 0 { 0.0 } else { correct as f64 / units as f64 };
    StreamedMvInit { qf: builder.finish(), shell, crowd_labels, mv_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::scenario::generate_scenario;
    use lncl_crowd::truth::{MajorityVote, TruthInference};
    use lncl_crowd::TaskKind;

    fn configs() -> Vec<ScenarioConfig> {
        vec![
            ScenarioConfig::tiny(TaskKind::Classification).with_seed(11),
            ScenarioConfig::tiny(TaskKind::SequenceTagging).with_seed(12),
        ]
    }

    #[test]
    fn fused_pass_matches_batch_majority_vote_bitwise() {
        for config in configs() {
            let batch = generate_scenario(&config);
            let view = batch.annotation_view();
            let mv = MajorityVote.infer(&view);
            for chunk_size in [1usize, 5, 1024] {
                let streamed = stream_mv_init(&config, chunk_size);
                assert_eq!(streamed.qf.num_instances(), batch.train.len());
                let mut u = 0usize;
                for i in 0..batch.train.len() {
                    for row in streamed.qf.instance_slice(i).chunks_exact(streamed.qf.num_classes()) {
                        for (a, b) in row.iter().zip(&mv.posteriors[u]) {
                            assert_eq!(a.to_bits(), b.to_bits(), "unit {u} diverged at chunk size {chunk_size}");
                        }
                        u += 1;
                    }
                }
                assert_eq!(u, view.num_units());
                assert_eq!(streamed.shell.dev, batch.dev);
                assert_eq!(streamed.shell.test, batch.test);
                assert!(streamed.shell.train.is_empty());
                assert!(streamed.crowd_labels > 0);
            }
        }
    }

    #[test]
    fn mv_accuracy_matches_the_batch_estimate() {
        for config in configs() {
            let batch = generate_scenario(&config);
            let view = batch.annotation_view();
            let mv = MajorityVote.infer(&view);
            let batch_acc = mv.accuracy(&view.gold) as f64;
            let streamed = stream_mv_init(&config, 13);
            assert!(
                (streamed.mv_accuracy - batch_acc).abs() < 1e-6,
                "fused accuracy {} vs batch {batch_acc}",
                streamed.mv_accuracy
            );
        }
    }

    #[test]
    fn builder_grows_and_finishes_consistently() {
        let mut builder = FlatPosteriorsBuilder::new(3);
        assert_eq!(builder.num_instances(), 0);
        builder.push_instance(2).copy_from_slice(&[0.1, 0.2, 0.7, 1.0, 0.0, 0.0]);
        builder.push_instance(1).copy_from_slice(&[0.3, 0.3, 0.4]);
        assert_eq!(builder.num_instances(), 2);
        assert_eq!(builder.total_units(), 3);
        let flat = builder.finish();
        assert_eq!(flat.num_instances(), 2);
        assert_eq!(flat.total_units(), 3);
        assert_eq!(flat.instance_slice(0), &[0.1, 0.2, 0.7, 1.0, 0.0, 0.0]);
        assert_eq!(flat.instance_slice(1), &[0.3, 0.3, 0.4]);
    }
}
