//! Logic knowledge distillation: construction of the rule-regularised target
//! `q_b(t)` (Eq. 15) and of the final training target
//! `q_f = (1 − k)·q_a + k·q_b` (Eq. 9).

use lncl_logic::rule::ClassificationRule;
use lncl_logic::{project_distribution, project_sequence, SequenceRuleSet};
use lncl_tensor::Matrix;

/// The logic rules attached to a task.
pub enum TaskRules {
    /// Instance-level rules for sentence classification (e.g. the
    /// *A-but-B* rule).
    Classification(Vec<Box<dyn ClassificationRule>>),
    /// Transition rules for sequence tagging (e.g. the BIO rules).
    Sequence(SequenceRuleSet),
    /// No rules — turns Logic-LNCL into the plain EM baseline
    /// (the `w/o-Rule` ablation, equivalent to AggNet/Raykar with a neural
    /// classifier).
    None,
}

impl TaskRules {
    /// True when no rules are attached.
    pub fn is_none(&self) -> bool {
        matches!(self, TaskRules::None)
    }

    /// A short description used in reports.
    pub fn describe(&self) -> String {
        match self {
            TaskRules::Classification(rules) => {
                let names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
                format!("classification rules: [{}]", names.join(", "))
            }
            TaskRules::Sequence(set) => format!("sequence rules: {}", set.name),
            TaskRules::None => "no rules".to_string(),
        }
    }
}

/// Computes `q_b` for one instance given its `q_a` (a `units x K` matrix,
/// one row per unit), the rules, and a callback providing the classifier's
/// probabilities for arbitrary token subsequences (needed by the sentiment
/// but-rule, which evaluates `σΘ(clause B)` with the *current* network).
///
/// * For classification the instance has one unit; Eq. 15 is applied with
///   the penalties of every grounded rule.
/// * For sequence tagging the projection is the chain forward–backward of
///   [`lncl_logic::sequence`].
/// * With no rules `q_b = q_a`.
pub fn infer_qb(
    qa: &Matrix,
    tokens: &[usize],
    rules: &TaskRules,
    regularization_c: f32,
    clause_probs: &dyn Fn(&[usize]) -> Vec<f32>,
) -> Matrix {
    match rules {
        TaskRules::None => qa.clone(),
        TaskRules::Classification(rules) => {
            assert_eq!(qa.rows(), 1, "classification instances have exactly one unit");
            let penalties = lncl_logic::grounded_penalties(rules, tokens, clause_probs, qa.cols());
            Matrix::from_vec(1, qa.cols(), project_distribution(qa.row(0), &penalties, regularization_c))
        }
        TaskRules::Sequence(set) => {
            let rows: Vec<&[f32]> = (0..qa.rows()).map(|u| qa.row(u)).collect();
            matrix_from_rows(project_sequence(&rows, set, regularization_c), qa.cols())
        }
    }
}

/// The interpolated final target `q_f = (1 − k)·q_a + k·q_b` (Eq. 9), one
/// row per unit.
pub fn interpolate_qf(qa: &Matrix, qb: &Matrix, k: f32) -> Matrix {
    assert_eq!(qa.shape(), qb.shape(), "q_a and q_b must have the same shape");
    let k = k.clamp(0.0, 1.0);
    let mut out = qa.clone();
    for (o, &b) in out.as_mut_slice().iter_mut().zip(qb.as_slice()) {
        *o = (1.0 - k) * *o + k * b;
    }
    out
}

/// Converts a per-unit distribution list into a `units x K` matrix (the soft
/// targets consumed by the cross-entropy loss).
pub fn targets_matrix(q: &[Vec<f32>]) -> Matrix {
    assert!(!q.is_empty(), "targets_matrix: empty target");
    matrix_from_rows(q.to_vec(), q[0].len())
}

fn matrix_from_rows(rows: Vec<Vec<f32>>, k: usize) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), k);
    for (r, dist) in rows.iter().enumerate() {
        assert_eq!(dist.len(), k);
        m.row_mut(r).copy_from_slice(dist);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_logic::rules::ner_transition::ner_transition_rules;
    use lncl_logic::rules::sentiment_but::SentimentContrastRule;

    const BUT: usize = 7;

    #[test]
    fn no_rules_leaves_qa_untouched() {
        let qa = Matrix::row_vector(&[0.4, 0.6]);
        let qb = infer_qb(&qa, &[1, 2], &TaskRules::None, 5.0, &|_| vec![0.5, 0.5]);
        assert_eq!(qa, qb);
    }

    #[test]
    fn but_rule_moves_qb_towards_clause_b() {
        let rules = TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(BUT))]);
        let qa = Matrix::row_vector(&[0.7, 0.3]);
        // clause B strongly positive
        let qb = infer_qb(&qa, &[1, BUT, 2, 3], &rules, 5.0, &|_| vec![0.05, 0.95]);
        assert!(qb[(0, 1)] > qa[(0, 1)]);
        assert!(qb[(0, 1)] > 0.9);
    }

    #[test]
    fn ungrounded_rule_means_qb_equals_qa() {
        let rules = TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(BUT))]);
        let qa = Matrix::row_vector(&[0.7, 0.3]);
        let qb = infer_qb(&qa, &[1, 2, 3], &rules, 5.0, &|_| vec![0.0, 1.0]);
        assert!((qb[(0, 0)] - 0.7).abs() < 1e-5);
    }

    #[test]
    fn sequence_rules_clean_orphan_i_tags() {
        let rules = TaskRules::Sequence(ner_transition_rules(0.8, 0.2));
        // token 0: surely O; token 1: leaning towards orphan I-PER (class 2)
        let mut qa = Matrix::full(2, 9, 0.02);
        qa[(0, 0)] = 0.86;
        qa.row_mut(1).copy_from_slice(&[0.30, 0.04, 0.50, 0.04, 0.02, 0.02, 0.02, 0.03, 0.03]);
        let qb = infer_qb(&qa, &[1, 2], &rules, 5.0, &|_| vec![]);
        assert!(qb[(1, 2)] < qa[(1, 2)], "orphan I-PER should shrink: {:?}", qb.row(1));
    }

    #[test]
    fn interpolation_bounds() {
        let qa = Matrix::row_vector(&[0.8, 0.2]);
        let qb = Matrix::row_vector(&[0.2, 0.8]);
        let half = interpolate_qf(&qa, &qb, 0.5);
        assert!((half[(0, 0)] - 0.5).abs() < 1e-6);
        let zero = interpolate_qf(&qa, &qb, 0.0);
        assert_eq!(zero, qa);
        let one = interpolate_qf(&qa, &qb, 1.0);
        assert_eq!(one, qb);
        // out-of-range k clamps
        let clamped = interpolate_qf(&qa, &qb, 2.0);
        assert_eq!(clamped, qb);
    }

    #[test]
    fn interpolation_preserves_normalisation() {
        let qa = Matrix::from_rows(&[&[0.1, 0.6, 0.3], &[0.3, 0.3, 0.4]]);
        let qb = Matrix::from_rows(&[&[0.5, 0.25, 0.25], &[0.2, 0.7, 0.1]]);
        for k in [0.0f32, 0.3, 0.9] {
            let qf = interpolate_qf(&qa, &qb, k);
            for r in 0..qf.rows() {
                assert!((qf.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn targets_matrix_layout() {
        let q = vec![vec![0.2, 0.8], vec![0.9, 0.1]];
        let m = targets_matrix(&q);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[0.9, 0.1]);
    }

    #[test]
    fn describe_names_rules() {
        let rules = TaskRules::Classification(vec![Box::new(SentimentContrastRule::but_rule(BUT))]);
        assert!(rules.describe().contains("A-but-B"));
        assert!(TaskRules::None.is_none());
        assert!(TaskRules::Sequence(ner_transition_rules(0.8, 0.2)).describe().contains("ner-transitions"));
    }
}
