//! The pseudo-E-step posterior `q_a(t)` (Eq. 13 of the paper).

use crate::annotators::AnnotatorModel;
use lncl_crowd::Instance;
use lncl_tensor::{stats, Matrix};

/// Computes the truth posterior `q_a` for one instance (one distribution per
/// unit) by Bayes' rule:
///
/// ```text
/// q_a(t_u = k) ∝ p(t_u = k | x; Θ_NN) · Π_{j ∈ J(i)} π^{(j)}_{k, y_uj}
/// ```
///
/// `predictions` holds the classifier's class probabilities, one row per
/// unit.  Units without crowd labels fall back to the classifier prediction.
pub fn infer_qa(instance: &Instance, predictions: &Matrix, annotators: &AnnotatorModel) -> Vec<Vec<f32>> {
    let units = instance.num_units();
    let k = annotators.num_classes();
    assert_eq!(predictions.rows(), units, "prediction rows must match instance units");
    assert_eq!(predictions.cols(), k, "prediction columns must match class count");

    let mut out = Vec::with_capacity(units);
    for u in 0..units {
        let mut log_post: Vec<f32> = predictions.row(u).iter().map(|&p| p.max(1e-12).ln()).collect();
        for cl in &instance.crowd_labels {
            let observed = cl.labels[u];
            for (m, lp) in log_post.iter_mut().enumerate() {
                *lp += annotators.likelihood(cl.annotator, m, observed).max(1e-12).ln();
            }
        }
        out.push(stats::softmax(&log_post));
    }
    out
}

/// Batched version of [`infer_qa`] over many instances with their cached
/// classifier predictions.
pub fn infer_qa_all(instances: &[Instance], predictions: &[Matrix], annotators: &AnnotatorModel) -> Vec<Vec<Vec<f32>>> {
    assert_eq!(instances.len(), predictions.len(), "one prediction matrix per instance required");
    instances.iter().zip(predictions).map(|(inst, pred)| infer_qa(inst, pred, annotators)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::CrowdLabel;

    fn instance_with_labels(gold: Vec<usize>, labels: Vec<(usize, Vec<usize>)>) -> Instance {
        Instance {
            tokens: vec![1; gold.len()],
            gold,
            crowd_labels: labels.into_iter().map(|(annotator, labels)| CrowdLabel { annotator, labels }).collect(),
        }
    }

    #[test]
    fn without_crowd_labels_qa_equals_classifier() {
        let annotators = AnnotatorModel::new(2, 2, 0.8);
        let inst = instance_with_labels(vec![1], vec![]);
        let pred = Matrix::row_vector(&[0.3, 0.7]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert!((qa[0][0] - 0.3).abs() < 1e-5);
        assert!((qa[0][1] - 0.7).abs() < 1e-5);
    }

    #[test]
    fn reliable_annotators_sharpen_the_posterior() {
        let annotators = AnnotatorModel::new(3, 2, 0.9);
        let inst = instance_with_labels(vec![1], vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]);
        let pred = Matrix::row_vector(&[0.5, 0.5]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert!(qa[0][1] > 0.97, "three agreeing reliable annotators should dominate: {qa:?}");
    }

    #[test]
    fn classifier_and_annotators_combine_multiplicatively() {
        let annotators = AnnotatorModel::new(1, 2, 0.8);
        let inst = instance_with_labels(vec![0], vec![(0, vec![0])]);
        let pred = Matrix::row_vector(&[0.2, 0.8]);
        let qa = infer_qa(&inst, &pred, &annotators)[0].clone();
        // manual Bayes: [0.2*0.8, 0.8*0.2] normalised = [0.5, 0.5]
        assert!((qa[0] - 0.5).abs() < 1e-4, "{qa:?}");
    }

    #[test]
    fn sequence_units_are_treated_independently_given_predictions() {
        let annotators = AnnotatorModel::new(1, 3, 0.7);
        let inst = instance_with_labels(vec![0, 2], vec![(0, vec![0, 2])]);
        let pred = Matrix::from_rows(&[&[0.6, 0.2, 0.2], &[0.2, 0.2, 0.6]]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert_eq!(qa.len(), 2);
        assert!(qa[0][0] > 0.8);
        assert!(qa[1][2] > 0.8);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_is_rejected() {
        let annotators = AnnotatorModel::new(1, 2, 0.8);
        let inst = instance_with_labels(vec![0, 1], vec![]);
        let pred = Matrix::row_vector(&[0.5, 0.5]); // only one row for two units
        let _ = infer_qa(&inst, &pred, &annotators);
    }
}
