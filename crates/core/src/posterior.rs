//! The pseudo-E-step posterior `q_a(t)` (Eq. 13 of the paper), plus the
//! flat per-split storage ([`FlatPosteriors`]) the trainer keeps its
//! `q_a`/`q_f` distributions in: one `total_units x K` matrix for the whole
//! training split instead of one heap allocation per instance.

use crate::annotators::AnnotatorModel;
use lncl_crowd::Instance;
use lncl_tensor::{simd, stats, Matrix};

/// Per-unit distributions for a whole split, stored flat: a
/// `total_units x K` matrix plus per-instance unit offsets.  This is the
/// allocation-free backbone of the pseudo-E-step — computing a fresh set of
/// posteriors for the entire training split costs exactly one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPosteriors {
    data: Matrix,
    /// `offsets[i]..offsets[i + 1]` are the unit rows of instance `i`.
    offsets: Vec<usize>,
}

impl FlatPosteriors {
    /// Zero-filled storage sized for `instances` with `k` classes.
    pub fn zeros(instances: &[Instance], k: usize) -> Self {
        let mut offsets = Vec::with_capacity(instances.len() + 1);
        offsets.push(0);
        for inst in instances {
            offsets.push(offsets.last().unwrap() + inst.num_units());
        }
        Self { data: Matrix::zeros(*offsets.last().unwrap(), k), offsets }
    }

    /// Builds flat storage from one `units x K` matrix per instance.
    pub fn from_matrices(matrices: &[Matrix], k: usize) -> Self {
        let mut offsets = Vec::with_capacity(matrices.len() + 1);
        offsets.push(0);
        for m in matrices {
            assert_eq!(m.cols(), k, "from_matrices: instance matrix has {} classes, expected {k}", m.cols());
            offsets.push(offsets.last().unwrap() + m.rows());
        }
        let mut data = Matrix::zeros(*offsets.last().unwrap(), k);
        for (i, m) in matrices.iter().enumerate() {
            data.as_mut_slice()[offsets[i] * k..offsets[i + 1] * k].copy_from_slice(m.as_slice());
        }
        Self { data, offsets }
    }

    /// Number of instances covered.
    pub fn num_instances(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.data.cols()
    }

    /// Total units across all instances.
    pub fn total_units(&self) -> usize {
        self.data.rows()
    }

    /// Units of instance `i`.
    pub fn units_of(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The backing `total_units x K` matrix.
    pub fn data(&self) -> &Matrix {
        &self.data
    }

    /// Flat `units * K` slice of instance `i`.
    #[inline]
    pub fn instance_slice(&self, i: usize) -> &[f32] {
        let k = self.data.cols();
        &self.data.as_slice()[self.offsets[i] * k..self.offsets[i + 1] * k]
    }

    /// Mutable flat `units * K` slice of instance `i`.
    #[inline]
    pub fn instance_slice_mut(&mut self, i: usize) -> &mut [f32] {
        let k = self.data.cols();
        &mut self.data.as_mut_slice()[self.offsets[i] * k..self.offsets[i + 1] * k]
    }

    /// Materialises instance `i` as its own `units x K` matrix.
    pub fn instance_matrix(&self, i: usize) -> Matrix {
        Matrix::from_vec(self.units_of(i), self.data.cols(), self.instance_slice(i).to_vec())
    }

    /// Row-wise argmax of instance `i` (hard per-unit labels).
    pub fn instance_argmax(&self, i: usize) -> Vec<usize> {
        self.instance_slice(i).chunks_exact(self.data.cols()).map(stats::argmax).collect()
    }
}

/// Incremental [`FlatPosteriors`] constructor for consumers that discover
/// their instances one chunk at a time — the huge-tier streaming path,
/// which folds each generated chunk into the arena and drops it.  Unlike
/// [`FlatPosteriors::zeros`] it never needs the full instance list up
/// front; the arena grows amortised-O(1) per unit.
#[derive(Debug, Clone)]
pub struct FlatPosteriorsBuilder {
    k: usize,
    data: Vec<f32>,
    offsets: Vec<usize>,
}

impl FlatPosteriorsBuilder {
    /// An empty arena for `k`-class posteriors.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "FlatPosteriorsBuilder: need at least one class");
        Self { k, data: Vec::new(), offsets: vec![0] }
    }

    /// Appends a zero-filled instance of `units` rows and returns its flat
    /// `units * K` slice for the caller to fill in place.
    pub fn push_instance(&mut self, units: usize) -> &mut [f32] {
        let start = self.data.len();
        self.data.resize(start + units * self.k, 0.0);
        self.offsets.push(self.offsets.last().unwrap() + units);
        &mut self.data[start..]
    }

    /// Instances appended so far.
    pub fn num_instances(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total unit rows appended so far.
    pub fn total_units(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Finalises the arena.
    pub fn finish(self) -> FlatPosteriors {
        let units = *self.offsets.last().unwrap();
        FlatPosteriors { data: Matrix::from_vec(units, self.k, self.data), offsets: self.offsets }
    }
}

/// Computes the truth posterior `q_a` for one instance — a `units x K`
/// matrix, one row per unit — by Bayes' rule:
///
/// ```text
/// q_a(t_u = k) ∝ p(t_u = k | x; Θ_NN) · Π_{j ∈ J(i)} π^{(j)}_{k, y_uj}
/// ```
///
/// `predictions` holds the classifier's class probabilities, one row per
/// unit.  Units without crowd labels fall back to the classifier prediction.
/// The whole computation runs in the single output allocation: the log
/// posterior accumulates in place over the annotator model's cached
/// log-likelihood rows and is soft-maxed in place.
pub fn infer_qa(instance: &Instance, predictions: &Matrix, annotators: &AnnotatorModel) -> Matrix {
    let units = instance.num_units();
    let k = annotators.num_classes();
    let mut out = Matrix::zeros(units, k);
    infer_qa_into(instance, predictions, annotators, out.as_mut_slice());
    out
}

/// Zero-allocation core of [`infer_qa`]: writes the per-unit posterior rows
/// into `out` (a flat `units * K` buffer, e.g. an instance slice of a
/// [`FlatPosteriors`]).
pub fn infer_qa_into(instance: &Instance, predictions: &Matrix, annotators: &AnnotatorModel, out: &mut [f32]) {
    let units = instance.num_units();
    let k = annotators.num_classes();
    assert_eq!(predictions.rows(), units, "prediction rows must match instance units");
    assert_eq!(predictions.cols(), k, "prediction columns must match class count");
    assert_eq!(out.len(), units * k, "output buffer must hold units * K entries");

    let tier = simd::detected_tier();
    for (u, log_post) in out.chunks_exact_mut(k).enumerate() {
        for (lp, &p) in log_post.iter_mut().zip(predictions.row(u)) {
            *lp = p.max(1e-12).ln();
        }
        for cl in &instance.crowd_labels {
            // one contiguous cached row of pre-computed logs per label —
            // no `ln` and no strided confusion-matrix walk in this loop
            let lls = annotators.log_likelihoods_for(cl.annotator, cl.labels[u]);
            simd::add_assign(tier, log_post, lls);
        }
        stats::softmax_in_place(log_post);
    }
}

/// Drift-aware variant of [`infer_qa_into`]: every crowd label is judged by
/// the confusion matrix of the **stream window** its annotator produced it
/// in (see [`WindowedAnnotatorModel`](crate::annotators::WindowedAnnotatorModel)),
/// so an annotator whose reliability
/// changed mid-stream contributes correctly-weighted evidence on both sides
/// of the change.  `i` is the training-instance index the windowed model
/// was built over.
pub fn infer_qa_windowed_into(
    instance: &Instance,
    i: usize,
    predictions: &Matrix,
    annotators: &crate::annotators::WindowedAnnotatorModel,
    out: &mut [f32],
) {
    let units = instance.num_units();
    let k = annotators.num_classes();
    assert_eq!(predictions.rows(), units, "prediction rows must match instance units");
    assert_eq!(predictions.cols(), k, "prediction columns must match class count");
    assert_eq!(out.len(), units * k, "output buffer must hold units * K entries");

    let tier = simd::detected_tier();
    for (u, log_post) in out.chunks_exact_mut(k).enumerate() {
        for (lp, &p) in log_post.iter_mut().zip(predictions.row(u)) {
            *lp = p.max(1e-12).ln();
        }
        for (slot, cl) in instance.crowd_labels.iter().enumerate() {
            let lls = annotators.log_likelihoods_for(i, slot, cl.annotator, cl.labels[u]);
            simd::add_assign(tier, log_post, lls);
        }
        stats::softmax_in_place(log_post);
    }
}

/// Batched version of [`infer_qa`] over many instances with their cached
/// classifier predictions.
pub fn infer_qa_all(instances: &[Instance], predictions: &[Matrix], annotators: &AnnotatorModel) -> Vec<Matrix> {
    assert_eq!(instances.len(), predictions.len(), "one prediction matrix per instance required");
    instances.iter().zip(predictions).map(|(inst, pred)| infer_qa(inst, pred, annotators)).collect()
}

/// Eq. 13 for a whole split in one allocation: the posteriors of every
/// instance land in a single [`FlatPosteriors`], which is what the
/// trainer's pseudo-E-step keeps.
pub fn infer_qa_split(instances: &[Instance], predictions: &[Matrix], annotators: &AnnotatorModel) -> FlatPosteriors {
    assert_eq!(instances.len(), predictions.len(), "one prediction matrix per instance required");
    let mut out = FlatPosteriors::zeros(instances, annotators.num_classes());
    for (i, (inst, pred)) in instances.iter().zip(predictions).enumerate() {
        infer_qa_into(inst, pred, annotators, out.instance_slice_mut(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_crowd::CrowdLabel;

    fn instance_with_labels(gold: Vec<usize>, labels: Vec<(usize, Vec<usize>)>) -> Instance {
        Instance {
            tokens: vec![1; gold.len()],
            gold,
            crowd_labels: labels.into_iter().map(|(annotator, labels)| CrowdLabel { annotator, labels }).collect(),
        }
    }

    #[test]
    fn without_crowd_labels_qa_equals_classifier() {
        let annotators = AnnotatorModel::new(2, 2, 0.8);
        let inst = instance_with_labels(vec![1], vec![]);
        let pred = Matrix::row_vector(&[0.3, 0.7]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert!((qa[(0, 0)] - 0.3).abs() < 1e-5);
        assert!((qa[(0, 1)] - 0.7).abs() < 1e-5);
    }

    #[test]
    fn reliable_annotators_sharpen_the_posterior() {
        let annotators = AnnotatorModel::new(3, 2, 0.9);
        let inst = instance_with_labels(vec![1], vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]);
        let pred = Matrix::row_vector(&[0.5, 0.5]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert!(qa[(0, 1)] > 0.97, "three agreeing reliable annotators should dominate: {qa:?}");
    }

    #[test]
    fn classifier_and_annotators_combine_multiplicatively() {
        let annotators = AnnotatorModel::new(1, 2, 0.8);
        let inst = instance_with_labels(vec![0], vec![(0, vec![0])]);
        let pred = Matrix::row_vector(&[0.2, 0.8]);
        let qa = infer_qa(&inst, &pred, &annotators);
        // manual Bayes: [0.2*0.8, 0.8*0.2] normalised = [0.5, 0.5]
        assert!((qa[(0, 0)] - 0.5).abs() < 1e-4, "{qa:?}");
    }

    #[test]
    fn sequence_units_are_treated_independently_given_predictions() {
        let annotators = AnnotatorModel::new(1, 3, 0.7);
        let inst = instance_with_labels(vec![0, 2], vec![(0, vec![0, 2])]);
        let pred = Matrix::from_rows(&[&[0.6, 0.2, 0.2], &[0.2, 0.2, 0.6]]);
        let qa = infer_qa(&inst, &pred, &annotators);
        assert_eq!(qa.rows(), 2);
        assert!(qa[(0, 0)] > 0.8);
        assert!(qa[(1, 2)] > 0.8);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_is_rejected() {
        let annotators = AnnotatorModel::new(1, 2, 0.8);
        let inst = instance_with_labels(vec![0, 1], vec![]);
        let pred = Matrix::row_vector(&[0.5, 0.5]); // only one row for two units
        let _ = infer_qa(&inst, &pred, &annotators);
    }
}
