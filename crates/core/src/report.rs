//! Result records shared by the trainer, the baselines and the experiment
//! harness in `lncl-bench`.

/// Evaluation metrics of one method on one split.
///
/// For classification only `accuracy` is meaningful (the other fields mirror
/// it); for sequence tagging `accuracy` holds the token-level accuracy and
/// `precision`/`recall`/`f1` the strict span-level scores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalMetrics {
    /// Classification accuracy (or token accuracy for sequences).
    pub accuracy: f32,
    /// Strict span precision (sequence tasks).
    pub precision: f32,
    /// Strict span recall (sequence tasks).
    pub recall: f32,
    /// Strict span F1 (sequence tasks); equals accuracy for classification.
    pub f1: f32,
}

impl EvalMetrics {
    /// Metrics for a classification result.
    pub fn from_accuracy(accuracy: f32) -> Self {
        Self { accuracy, precision: accuracy, recall: accuracy, f1: accuracy }
    }

    /// The "headline" number used in the paper's tables: accuracy for
    /// classification, span F1 for sequences.
    pub fn headline(&self, sequence_task: bool) -> f32 {
        if sequence_task {
            self.f1
        } else {
            self.accuracy
        }
    }

    /// Element-wise mean of a set of metrics (used to average repetitions).
    pub fn mean(samples: &[EvalMetrics]) -> EvalMetrics {
        if samples.is_empty() {
            return EvalMetrics::default();
        }
        let n = samples.len() as f32;
        EvalMetrics {
            accuracy: samples.iter().map(|m| m.accuracy).sum::<f32>() / n,
            precision: samples.iter().map(|m| m.precision).sum::<f32>() / n,
            recall: samples.iter().map(|m| m.recall).sum::<f32>() / n,
            f1: samples.iter().map(|m| m.f1).sum::<f32>() / n,
        }
    }
}

/// One row of a results table: a method with its prediction metrics (test
/// split) and inference metrics (training split), exactly the two column
/// groups of Tables II and III.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Display name ("Logic-LNCL-teacher", "AggNet", "MV-Classifier", …).
    pub method: String,
    /// Generalisation performance on the held-out test split.
    pub prediction: EvalMetrics,
    /// Inference performance on the training split (quality of the
    /// recovered ground-truth labels), when applicable.
    pub inference: Option<EvalMetrics>,
}

impl MethodResult {
    /// Creates a result row.
    pub fn new(method: impl Into<String>, prediction: EvalMetrics, inference: Option<EvalMetrics>) -> Self {
        Self { method: method.into(), prediction, inference }
    }

    /// Average of the headline prediction and inference numbers (the
    /// "Average" column of Tables II/IV).
    pub fn average(&self, sequence_task: bool) -> f32 {
        match self.inference {
            Some(inf) => (self.prediction.headline(sequence_task) + inf.headline(sequence_task)) / 2.0,
            None => self.prediction.headline(sequence_task),
        }
    }
}

/// Training history returned by the trainer.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Development metric (accuracy or span F1) per epoch.
    pub dev_history: Vec<f32>,
    /// Training loss per epoch (mean mini-batch loss).
    pub loss_history: Vec<f32>,
    /// Epoch with the best development metric (0-based).
    pub best_epoch: usize,
    /// Number of epochs actually run (early stopping may cut training short).
    pub epochs_run: usize,
    /// Inference metrics of the final `q_f` against the training gold labels.
    pub inference: EvalMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_accuracy_mirrors_value() {
        let m = EvalMetrics::from_accuracy(0.8);
        assert_eq!(m.f1, 0.8);
        assert_eq!(m.headline(false), 0.8);
    }

    #[test]
    fn headline_picks_f1_for_sequences() {
        let m = EvalMetrics { accuracy: 0.9, precision: 0.5, recall: 0.5, f1: 0.5 };
        assert_eq!(m.headline(true), 0.5);
        assert_eq!(m.headline(false), 0.9);
    }

    #[test]
    fn mean_of_metrics() {
        let a = EvalMetrics::from_accuracy(0.6);
        let b = EvalMetrics::from_accuracy(0.8);
        let mean = EvalMetrics::mean(&[a, b]);
        assert!((mean.accuracy - 0.7).abs() < 1e-6);
        assert_eq!(EvalMetrics::mean(&[]), EvalMetrics::default());
    }

    #[test]
    fn method_result_average() {
        let r = MethodResult::new("m", EvalMetrics::from_accuracy(0.8), Some(EvalMetrics::from_accuracy(0.9)));
        assert!((r.average(false) - 0.85).abs() < 1e-6);
        let no_inf = MethodResult::new("m", EvalMetrics::from_accuracy(0.8), None);
        assert!((no_inf.average(false) - 0.8).abs() < 1e-6);
    }
}
