//! Gated recurrent unit (GRU) cell and sequence layer.
//!
//! The NER architecture of the paper feeds convolutional features into a GRU
//! with 50 hidden states; this module provides the cell (one time step) and
//! a convenience layer that unrolls it over a whole sequence on the autograd
//! tape.

use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::{Matrix, TensorRng};

/// A single GRU cell.
///
/// Update gate `z`, reset gate `r`, candidate `h̃`:
/// ```text
/// z = σ(x Wz + h Uz + bz)
/// r = σ(x Wr + h Ur + br)
/// h̃ = tanh(x Wh + (r ⊙ h) Uh + bh)
/// h' = (1 - z) ⊙ h + z ⊙ h̃
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    pub wz: Param,
    pub uz: Param,
    pub bz: Param,
    pub wr: Param,
    pub ur: Param,
    pub br: Param,
    pub wh: Param,
    pub uh: Param,
    pub bh: Param,
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Creates a cell with Xavier-initialised weights and zero biases.
    pub fn new(name: &str, in_dim: usize, hidden_dim: usize, rng: &mut TensorRng) -> Self {
        let w = |suffix: &str, rows: usize, cols: usize, rng: &mut TensorRng| {
            Param::new(format!("{name}.{suffix}"), rng.xavier_uniform(rows, cols))
        };
        let b = |suffix: &str, cols: usize| Param::new(format!("{name}.{suffix}"), Matrix::zeros(1, cols));
        Self {
            wz: w("wz", in_dim, hidden_dim, rng),
            uz: w("uz", hidden_dim, hidden_dim, rng),
            bz: b("bz", hidden_dim),
            wr: w("wr", in_dim, hidden_dim, rng),
            ur: w("ur", hidden_dim, hidden_dim, rng),
            br: b("br", hidden_dim),
            wh: w("wh", in_dim, hidden_dim, rng),
            uh: w("uh", hidden_dim, hidden_dim, rng),
            bh: b("bh", hidden_dim),
            in_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One time step: consumes `x` (`1 x in_dim`) and the previous hidden
    /// state `h` (`1 x hidden_dim`), returning the next hidden state.
    pub fn step(&self, tape: &mut Tape, binding: &mut Binding, x: Var, h: Var) -> Var {
        let wz = binding.bind(tape, &self.wz);
        let uz = binding.bind(tape, &self.uz);
        let bz = binding.bind(tape, &self.bz);
        let wr = binding.bind(tape, &self.wr);
        let ur = binding.bind(tape, &self.ur);
        let br = binding.bind(tape, &self.br);
        let wh = binding.bind(tape, &self.wh);
        let uh = binding.bind(tape, &self.uh);
        let bh = binding.bind(tape, &self.bh);

        // z = sigmoid(x Wz + h Uz + bz), fused gate pre-activation
        let sz = tape.dual_affine(x, wz, h, uz, bz);
        let z = tape.sigmoid(sz);

        // r = sigmoid(x Wr + h Ur + br)
        let sr = tape.dual_affine(x, wr, h, ur, br);
        let r = tape.sigmoid(sr);

        // candidate = tanh(x Wh + (r ⊙ h) Uh + bh)
        let rh = tape.mul(r, h);
        let sh = tape.dual_affine(x, wh, rh, uh, bh);
        let cand = tape.tanh(sh);

        // h' = (1-z) ⊙ h + z ⊙ candidate
        let one_minus_z = tape.one_minus(z);
        let keep = tape.mul(one_minus_z, h);
        let update = tape.mul(z, cand);
        tape.add(keep, update)
    }
}

impl Module for GruCell {
    fn params(&self) -> Vec<&Param> {
        vec![&self.wz, &self.uz, &self.bz, &self.wr, &self.ur, &self.br, &self.wh, &self.uh, &self.bh]
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.wz,
            &mut self.uz,
            &mut self.bz,
            &mut self.wr,
            &mut self.ur,
            &mut self.br,
            &mut self.wh,
            &mut self.uh,
            &mut self.bh,
        ]
    }
}

/// A unidirectional GRU layer: unrolls a [`GruCell`] over a `T x in_dim`
/// sequence and returns the stacked hidden states (`T x hidden_dim`).
#[derive(Debug, Clone)]
pub struct Gru {
    /// The shared cell.
    pub cell: GruCell,
}

impl Gru {
    /// Creates a GRU layer.
    pub fn new(name: &str, in_dim: usize, hidden_dim: usize, rng: &mut TensorRng) -> Self {
        Self { cell: GruCell::new(name, in_dim, hidden_dim, rng) }
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden_dim()
    }

    /// Unrolls the cell over the sequence node `x` (`T x in_dim`), starting
    /// from a zero hidden state, and returns all hidden states stacked into
    /// a `T x hidden_dim` node.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, x: Var) -> Var {
        let (steps, _) = tape.shape(x);
        assert!(steps > 0, "Gru::forward: empty sequence");
        let mut h = tape.constant(Matrix::zeros(1, self.cell.hidden_dim()));
        let mut outputs = Vec::with_capacity(steps);
        for t in 0..steps {
            let xt = tape.row_slice(x, t);
            h = self.cell.step(tape, binding, xt, h);
            outputs.push(h);
        }
        tape.vstack(&outputs)
    }

    /// Eval-mode unroll on a raw `T x in_dim` matrix (no tape).  The input
    /// projections of all three gates are batched into three matrix
    /// products up front; the recurrent part runs per step.  Produces
    /// exactly the values of the tape unroll.
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        use lncl_tensor::ops;
        let steps = x.rows();
        assert!(steps > 0, "Gru::forward_matrix: empty sequence");
        let hid = self.cell.hidden_dim();
        let c = &self.cell;
        let xz = ops::matmul(x, &c.wz.value);
        let xr = ops::matmul(x, &c.wr.value);
        let xh = ops::matmul(x, &c.wh.value);
        let mut out = Matrix::zeros(steps, hid);
        let mut h = Matrix::zeros(1, hid);
        for t in 0..steps {
            let hz = ops::matmul(&h, &c.uz.value);
            let hr = ops::matmul(&h, &c.ur.value);
            let mut z = Matrix::zeros(1, hid);
            let mut r = Matrix::zeros(1, hid);
            for j in 0..hid {
                let sz = (xz[(t, j)] + hz[(0, j)]) + c.bz.value[(0, j)];
                z[(0, j)] = 1.0 / (1.0 + (-sz).exp());
                let sr = (xr[(t, j)] + hr[(0, j)]) + c.br.value[(0, j)];
                r[(0, j)] = 1.0 / (1.0 + (-sr).exp());
            }
            let rh = ops::mul(&r, &h);
            let rhu = ops::matmul(&rh, &c.uh.value);
            let out_row = out.row_mut(t);
            for j in 0..hid {
                let sh = (xh[(t, j)] + rhu[(0, j)]) + c.bh.value[(0, j)];
                let cand = sh.tanh();
                let keep = (1.0 - z[(0, j)]) * h[(0, j)];
                let update = z[(0, j)] * cand;
                out_row[j] = keep + update;
            }
            h.as_mut_slice().copy_from_slice(out.row(t));
        }
        out
    }
}

impl Module for Gru {
    fn params(&self) -> Vec<&Param> {
        self.cell.params()
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.cell.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_autograd::gradcheck::assert_gradients_close;

    #[test]
    fn step_output_shape_and_range() {
        let mut rng = TensorRng::seed_from_u64(0);
        let cell = GruCell::new("gru", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(1, 3, 1.0));
        let h = tape.constant(Matrix::zeros(1, 4));
        let h1 = cell.step(&mut tape, &mut binding, x, h);
        assert_eq!(tape.shape(h1), (1, 4));
        // convex combination of tanh and 0 stays in (-1, 1)
        assert!(tape.value(h1).as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn unrolled_sequence_shape() {
        let mut rng = TensorRng::seed_from_u64(1);
        let gru = Gru::new("gru", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(7, 3, 1.0));
        let out = gru.forward(&mut tape, &mut binding, x);
        assert_eq!(tape.shape(out), (7, 5));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = TensorRng::seed_from_u64(2);
        let mut gru = Gru::new("gru", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(4, 2, 1.0));
        let out = gru.forward(&mut tape, &mut binding, x);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        binding.accumulate(&tape, gru.params_mut());
        for p in gru.params() {
            if p.name.ends_with("wz") || p.name.ends_with("wh") || p.name.ends_with("uh") {
                assert!(p.grad.as_slice().iter().any(|&g| g != 0.0), "no gradient for {}", p.name);
            }
        }
        // the input should also receive gradient at every timestep
        assert!(tape.grad(x).as_slice().iter().filter(|&&g| g != 0.0).count() >= 4);
    }

    #[test]
    fn gru_input_gradient_matches_finite_differences() {
        let mut rng = TensorRng::seed_from_u64(3);
        let gru = Gru::new("gru", 2, 3, &mut rng);
        let x = rng.normal_matrix(3, 2, 0.5);
        assert_gradients_close(&[x], 1e-2, 2e-2, move |tape, vars| {
            let mut binding = Binding::new();
            let out = gru.forward(tape, &mut binding, vars[0]);
            tape.sum_all(out)
        });
    }

    #[test]
    fn parameter_count() {
        let mut rng = TensorRng::seed_from_u64(4);
        let gru = Gru::new("gru", 4, 6, &mut rng);
        // 3 gates * (in*hidden + hidden*hidden + hidden)
        assert_eq!(gru.num_parameters(), 3 * (4 * 6 + 6 * 6 + 6));
    }
}
