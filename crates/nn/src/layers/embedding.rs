//! Token-embedding lookup table.

use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::{Matrix, TensorRng};

/// Learned word-embedding table (`vocab_size x dim`).
///
/// The paper uses pre-trained 300-d word2vec/GloVe vectors; in this
/// reproduction the table is randomly initialised and trained jointly with
/// the task (see DESIGN.md §1 for the substitution rationale).  Index `0`
/// is reserved as the padding token by the models in [`crate::models`].
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The embedding table.
    pub table: Param,
    vocab_size: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a table with small normal-initialised entries.
    pub fn new(name: &str, vocab_size: usize, dim: usize, rng: &mut TensorRng) -> Self {
        let mut table = rng.normal_matrix(vocab_size, dim, 0.1);
        // keep the padding row at zero so padded positions contribute nothing.
        if vocab_size > 0 {
            table.row_mut(0).iter_mut().for_each(|v| *v = 0.0);
        }
        Self { table: Param::new(format!("{name}.table"), table), vocab_size, dim }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `tokens`, producing a `tokens.len() x dim` node.
    ///
    /// Only the looked-up rows are copied onto the tape (a gathered
    /// binding), so the cost of a forward pass scales with the sentence
    /// length, not the vocabulary size.
    ///
    /// # Panics
    /// Panics if any token id is outside the vocabulary.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, tokens: &[usize]) -> Var {
        assert!(!tokens.is_empty(), "Embedding::forward: empty token sequence");
        for &t in tokens {
            assert!(t < self.vocab_size, "token id {t} out of vocabulary (size {})", self.vocab_size);
        }
        binding.bind_gathered(tape, &self.table, tokens)
    }

    /// Eval-mode lookup returning a plain matrix.
    pub fn lookup(&self, tokens: &[usize]) -> Matrix {
        lncl_tensor::ops::gather_rows(&self.table.value, tokens)
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = TensorRng::seed_from_u64(0);
        let emb = Embedding::new("emb", 5, 3, &mut rng);
        let m = emb.lookup(&[2, 4]);
        assert_eq!(m.row(0), emb.table.value.row(2));
        assert_eq!(m.row(1), emb.table.value.row(4));
    }

    #[test]
    fn padding_row_is_zero() {
        let mut rng = TensorRng::seed_from_u64(1);
        let emb = Embedding::new("emb", 4, 8, &mut rng);
        assert!(emb.table.value.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_accumulates_only_on_used_rows() {
        let mut rng = TensorRng::seed_from_u64(2);
        let mut emb = Embedding::new("emb", 6, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let e = emb.forward(&mut tape, &mut binding, &[1, 1, 3]);
        let loss = tape.sum_all(e);
        tape.backward(loss);
        binding.accumulate(&tape, emb.params_mut());
        assert_eq!(emb.table.grad.row(1), &[2.0, 2.0]);
        assert_eq!(emb.table.grad.row(3), &[1.0, 1.0]);
        assert_eq!(emb.table.grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_panics() {
        let mut rng = TensorRng::seed_from_u64(3);
        let emb = Embedding::new("emb", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let _ = emb.forward(&mut tape, &mut binding, &[5]);
    }
}
