//! Neural-network layers used by the paper's two architectures.

pub mod conv_text;
pub mod dropout;
pub mod embedding;
pub mod gru;
pub mod linear;

pub use conv_text::{SameConv, TextConv};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gru::{Gru, GruCell};
pub use linear::Linear;
