//! Fully-connected (affine) layer.

use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::{Matrix, TensorRng};

/// A dense affine layer `y = x W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`in_dim x out_dim`).
    pub weight: Param,
    /// Bias row (`1 x out_dim`).
    pub bias: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        let weight = Param::new(format!("{name}.weight"), rng.xavier_uniform(in_dim, out_dim));
        let bias = Param::new(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self { weight, bias, in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `rows x in_dim` input node.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, x: Var) -> Var {
        let w = binding.bind(tape, &self.weight);
        let b = binding.bind(tape, &self.bias);
        tape.affine(x, w, b)
    }

    /// Convenience eval-mode forward on raw data (no tape bookkeeping kept).
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        lncl_tensor::ops::affine(x, &self.weight.value, &self.bias.value)
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_values() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut layer = Linear::new("fc", 3, 2, &mut rng);
        layer.weight.value = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        layer.bias.value = Matrix::row_vector(&[0.5, -0.5]);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = layer.forward(&mut tape, &mut binding, x);
        assert_eq!(tape.value(y), &Matrix::row_vector(&[4.5, 4.5]));
        assert_eq!(tape.value(y), &layer.forward_matrix(&Matrix::from_rows(&[&[1.0, 2.0, 3.0]])));
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut rng = TensorRng::seed_from_u64(1);
        let mut layer = Linear::new("fc", 2, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]));
        let y = layer.forward(&mut tape, &mut binding, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        binding.accumulate(&tape, layer.params_mut());
        assert!(layer.weight.grad.as_slice().iter().any(|&g| g != 0.0));
        assert_eq!(layer.bias.grad, Matrix::row_vector(&[2.0, 2.0]));
    }

    #[test]
    fn module_reports_parameter_count() {
        let mut rng = TensorRng::seed_from_u64(2);
        let layer = Linear::new("fc", 4, 3, &mut rng);
        assert_eq!(layer.num_parameters(), 4 * 3 + 3);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
    }
}
