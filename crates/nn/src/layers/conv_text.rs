//! Multi-window text convolution with max-over-time pooling (the feature
//! extractor of the Kim-2014 sentence CNN used for the sentiment task), and
//! a "same-length" 1-D convolution used by the NER tagger.

use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::{Matrix, TensorRng};

/// One convolutional filter bank for a single window size.
#[derive(Debug, Clone)]
pub struct ConvFilter {
    /// Flattened filter weights (`window * emb_dim x num_filters`).
    pub weight: Param,
    /// Bias (`1 x num_filters`).
    pub bias: Param,
    /// Window (kernel) size in tokens.
    pub window: usize,
}

/// Kim-2014 style text convolution: several window sizes, each with its own
/// filter bank, ReLU activation and max-over-time pooling; the pooled
/// features of all windows are concatenated into a single `1 x total`
/// feature vector.
#[derive(Debug, Clone)]
pub struct TextConv {
    filters: Vec<ConvFilter>,
    emb_dim: usize,
    num_filters: usize,
}

impl TextConv {
    /// Creates filter banks for each window size with `num_filters` filters
    /// per window.
    pub fn new(name: &str, emb_dim: usize, windows: &[usize], num_filters: usize, rng: &mut TensorRng) -> Self {
        assert!(!windows.is_empty(), "TextConv: need at least one window size");
        let filters = windows
            .iter()
            .map(|&w| ConvFilter {
                weight: Param::new(format!("{name}.conv{w}.weight"), rng.xavier_uniform(w * emb_dim, num_filters)),
                bias: Param::new(format!("{name}.conv{w}.bias"), Matrix::zeros(1, num_filters)),
                window: w,
            })
            .collect();
        Self { filters, emb_dim, num_filters }
    }

    /// Total pooled feature dimensionality (`windows.len() * num_filters`).
    pub fn output_dim(&self) -> usize {
        self.filters.len() * self.num_filters
    }

    /// Largest window size; sentences must be padded to at least this many
    /// tokens before calling [`TextConv::forward`].
    pub fn max_window(&self) -> usize {
        self.filters.iter().map(|f| f.window).max().unwrap_or(1)
    }

    /// Embedding dimensionality this layer expects.
    pub fn emb_dim(&self) -> usize {
        self.emb_dim
    }

    /// Applies the convolution to a `T x emb_dim` node and returns the
    /// pooled `1 x output_dim` feature node.
    ///
    /// # Panics
    /// Panics if the sequence is shorter than the largest window.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, embedded: Var) -> Var {
        let (rows, cols) = tape.shape(embedded);
        assert_eq!(cols, self.emb_dim, "TextConv: embedding dim mismatch");
        assert!(
            rows >= self.max_window(),
            "TextConv: sequence length {rows} shorter than max window {}; pad first",
            self.max_window()
        );
        let mut pooled = Vec::with_capacity(self.filters.len());
        for filter in &self.filters {
            let w = binding.bind(tape, &filter.weight);
            let b = binding.bind(tape, &filter.bias);
            let act = tape.conv_window(embedded, w, b, filter.window);
            pooled.push(tape.max_over_rows(act));
        }
        tape.hstack(&pooled)
    }

    /// Eval-mode forward on a raw `T x emb_dim` matrix (no tape): the same
    /// im2col → fused affine+ReLU → max-over-time pipeline through the
    /// fused tensor ops.
    pub fn forward_matrix(&self, embedded: &Matrix) -> Matrix {
        use lncl_tensor::ops;
        assert_eq!(embedded.cols(), self.emb_dim, "TextConv: embedding dim mismatch");
        let pooled: Vec<Matrix> = self
            .filters
            .iter()
            .map(|filter| {
                let cols = ops::im2col(embedded, filter.window);
                let act = ops::affine_relu(&cols, &filter.weight.value, &filter.bias.value);
                ops::max_over_rows(&act).0
            })
            .collect();
        Matrix::hstack(&pooled.iter().collect::<Vec<_>>())
    }
}

impl Module for TextConv {
    fn params(&self) -> Vec<&Param> {
        self.filters.iter().flat_map(|f| [&f.weight, &f.bias]).collect()
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.filters.iter_mut().flat_map(|f| [&mut f.weight, &mut f.bias]).collect()
    }
}

/// A "same-length" 1-D convolution over a token sequence: each output row is
/// a ReLU-activated affine function of a window centred on the corresponding
/// input token (with implicit zero padding at the borders).  This is the
/// convolutional front-end of the NER tagger of Rodrigues & Pereira (2018).
#[derive(Debug, Clone)]
pub struct SameConv {
    /// Flattened filter weights (`window * in_dim x out_dim`).
    pub weight: Param,
    /// Bias (`1 x out_dim`).
    pub bias: Param,
    window: usize,
    in_dim: usize,
    out_dim: usize,
}

impl SameConv {
    /// Creates a same-length convolution with an odd `window`.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, window: usize, rng: &mut TensorRng) -> Self {
        assert!(window % 2 == 1, "SameConv: window must be odd so the output aligns with the input");
        Self {
            weight: Param::new(format!("{name}.weight"), rng.xavier_uniform(window * in_dim, out_dim)),
            bias: Param::new(format!("{name}.bias"), Matrix::zeros(1, out_dim)),
            window,
            in_dim,
            out_dim,
        }
    }

    /// Output feature dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Applies the convolution to a `T x in_dim` node, producing `T x out_dim`.
    ///
    /// Zero padding of `(window-1)/2` rows is applied at both ends so the
    /// output has the same number of rows as the input.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, x: Var) -> Var {
        let (rows, cols) = tape.shape(x);
        assert_eq!(cols, self.in_dim, "SameConv: input dim mismatch");
        assert!(rows > 0, "SameConv: empty sequence");
        let half = (self.window - 1) / 2;
        let pad = tape.constant(Matrix::zeros(half, self.in_dim));
        let padded = if half > 0 { tape.vstack(&[pad, x, pad]) } else { x };
        let w = binding.bind(tape, &self.weight);
        let b = binding.bind(tape, &self.bias);
        tape.conv_window(padded, w, b, self.window)
    }

    /// Eval-mode forward on a raw `T x in_dim` matrix (no tape).
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        use lncl_tensor::ops;
        assert_eq!(x.cols(), self.in_dim, "SameConv: input dim mismatch");
        assert!(x.rows() > 0, "SameConv: empty sequence");
        let half = (self.window - 1) / 2;
        let padded = if half > 0 {
            let pad = Matrix::zeros(half, self.in_dim);
            Matrix::vstack(&[&pad, x, &pad])
        } else {
            x.clone()
        };
        let cols = ops::im2col(&padded, self.window);
        ops::affine_relu(&cols, &self.weight.value, &self.bias.value)
    }
}

impl Module for SameConv {
    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_conv_output_shape() {
        let mut rng = TensorRng::seed_from_u64(0);
        let conv = TextConv::new("tc", 4, &[2, 3], 5, &mut rng);
        assert_eq!(conv.output_dim(), 10);
        assert_eq!(conv.max_window(), 3);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(7, 4, 1.0));
        let y = conv.forward(&mut tape, &mut binding, x);
        assert_eq!(tape.shape(y), (1, 10));
    }

    #[test]
    #[should_panic]
    fn text_conv_rejects_too_short_sequences() {
        let mut rng = TensorRng::seed_from_u64(1);
        let conv = TextConv::new("tc", 4, &[3, 5], 2, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(3, 4, 1.0));
        let _ = conv.forward(&mut tape, &mut binding, x);
    }

    #[test]
    fn text_conv_gradients_reach_all_filters() {
        let mut rng = TensorRng::seed_from_u64(2);
        let mut conv = TextConv::new("tc", 3, &[2, 3], 4, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(6, 3, 1.0));
        let y = conv.forward(&mut tape, &mut binding, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        binding.accumulate(&tape, conv.params_mut());
        for p in conv.params() {
            if p.name.contains("weight") {
                assert!(p.grad.as_slice().iter().any(|&g| g != 0.0), "no gradient in {}", p.name);
            }
        }
    }

    #[test]
    fn same_conv_preserves_length() {
        let mut rng = TensorRng::seed_from_u64(3);
        let conv = SameConv::new("sc", 4, 6, 5, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(9, 4, 1.0));
        let y = conv.forward(&mut tape, &mut binding, x);
        assert_eq!(tape.shape(y), (9, 6));
    }

    #[test]
    fn same_conv_single_token_sequence() {
        let mut rng = TensorRng::seed_from_u64(4);
        let conv = SameConv::new("sc", 3, 2, 3, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let x = tape.leaf(rng.normal_matrix(1, 3, 1.0));
        let y = conv.forward(&mut tape, &mut binding, x);
        assert_eq!(tape.shape(y), (1, 2));
    }

    #[test]
    #[should_panic]
    fn same_conv_requires_odd_window() {
        let mut rng = TensorRng::seed_from_u64(5);
        let _ = SameConv::new("sc", 3, 2, 4, &mut rng);
    }
}
