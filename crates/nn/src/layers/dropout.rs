//! Inverted dropout layer.

use crate::module::{Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::TensorRng;

/// Inverted dropout: during training each unit is kept with probability
/// `keep` and scaled by `1/keep`; during evaluation the layer is the
/// identity.  Randomness is supplied explicitly through a [`TensorRng`] so
/// experiments remain reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    keep: f32,
}

impl Dropout {
    /// Creates a dropout layer with the given *keep* probability (the paper
    /// specifies dropout of 0.5, i.e. `keep = 0.5`).
    pub fn new(keep: f32) -> Self {
        assert!(keep > 0.0 && keep <= 1.0, "Dropout: keep probability must be in (0, 1]");
        Self { keep }
    }

    /// Keep probability.
    pub fn keep(&self) -> f32 {
        self.keep
    }

    /// Applies dropout to `x`.
    pub fn forward(&self, tape: &mut Tape, x: Var, rng: &mut TensorRng, training: bool) -> Var {
        let (rows, cols) = tape.shape(x);
        let uniforms: Vec<f32> =
            if training && self.keep < 1.0 { (0..rows * cols).map(|_| rng.uniform()).collect() } else { Vec::new() };
        tape.dropout(x, self.keep, &uniforms, training && self.keep < 1.0)
    }
}

impl Module for Dropout {
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_tensor::Matrix;

    #[test]
    fn eval_mode_is_identity() {
        let dropout = Dropout::new(0.5);
        let mut rng = TensorRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::full(2, 3, 1.5));
        let y = dropout.forward(&mut tape, x, &mut rng, false);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    fn training_mode_preserves_expectation_roughly() {
        let dropout = Dropout::new(0.5);
        let mut rng = TensorRng::seed_from_u64(1);
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::full(1, 50, 1.0));
            let y = dropout.forward(&mut tape, x, &mut rng, true);
            total += tape.value(y).mean();
        }
        let mean = total / trials as f32;
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout should preserve the mean, got {mean}");
    }

    #[test]
    fn keep_one_is_identity_even_in_training() {
        let dropout = Dropout::new(1.0);
        let mut rng = TensorRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::full(1, 4, 2.0));
        let y = dropout.forward(&mut tape, x, &mut rng, true);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    #[should_panic]
    fn zero_keep_probability_rejected() {
        let _ = Dropout::new(0.0);
    }

    #[test]
    fn has_no_parameters() {
        assert_eq!(Dropout::new(0.5).num_parameters(), 0);
    }
}
