//! Stochastic gradient descent with optional momentum and weight decay.

use super::{apply_weight_decay, Optimizer};
use crate::module::Param;
use lncl_tensor::Matrix;
use std::collections::HashMap;

/// Classic SGD: `v = momentum * v + grad; value -= lr * v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Matrix>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: HashMap::new() }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables L2 weight decay.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            apply_weight_decay(param, self.weight_decay);
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(param.id())
                    .or_insert_with(|| Matrix::zeros(param.value.rows(), param.value.cols()));
                for (vi, gi) in v.as_mut_slice().iter_mut().zip(param.grad.as_slice()) {
                    *vi = self.momentum * *vi + gi;
                }
                lncl_tensor::ops::axpy(-self.lr, v.as_slice(), param.value.as_mut_slice());
            } else {
                let Param { value, grad, .. } = &mut **param;
                lncl_tensor::ops::axpy(-self.lr, grad.as_slice(), value.as_mut_slice());
            }
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut p = Param::new("p", Matrix::full(1, 2, 1.0));
        p.grad = Matrix::row_vector(&[1.0, -2.0]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p]);
        assert!(p.value.approx_eq(&Matrix::row_vector(&[0.9, 1.2]), 1e-6));
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Param::new("p", Matrix::full(1, 1, 0.0));
        let mut opt = Sgd::new(1.0).with_momentum(0.5);
        p.grad = Matrix::full(1, 1, 1.0);
        opt.step(&mut [&mut p]);
        assert!((p.value[(0, 0)] + 1.0).abs() < 1e-6);
        p.grad = Matrix::full(1, 1, 1.0);
        opt.step(&mut [&mut p]);
        // velocity = 0.5*1 + 1 = 1.5, value = -1 - 1.5 = -2.5
        assert!((p.value[(0, 0)] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut p = Param::new("p", Matrix::full(1, 1, 10.0));
        p.grad = Matrix::zeros(1, 1);
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        opt.step(&mut [&mut p]);
        assert!(p.value[(0, 0)] < 10.0);
    }

    #[test]
    fn learning_rate_setter() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
