//! Adam optimiser (Kingma & Ba, 2015) — the optimiser the paper uses for the
//! NER tagger (learning rate 0.001).

use super::{apply_weight_decay, Optimizer};
use crate::module::Param;
use lncl_tensor::Matrix;
use std::collections::HashMap;

struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
}

/// Adam with bias-corrected first/second moment estimates.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    state: HashMap<u64, AdamState>,
}

impl Adam {
    /// Creates Adam with the usual defaults (`beta1 = 0.9`, `beta2 = 0.999`,
    /// `eps = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, state: HashMap::new() }
    }

    /// Overrides the exponential-decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enables L2 weight decay.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            apply_weight_decay(param, self.weight_decay);
            let entry = self.state.entry(param.id()).or_insert_with(|| AdamState {
                m: Matrix::zeros(param.value.rows(), param.value.cols()),
                v: Matrix::zeros(param.value.rows(), param.value.cols()),
                t: 0,
            });
            entry.t += 1;
            let t = entry.t as f32;
            let bias1 = 1.0 - self.beta1.powf(t);
            let bias2 = 1.0 - self.beta2.powf(t);
            for ((m, v), (g, value)) in entry
                .m
                .as_mut_slice()
                .iter_mut()
                .zip(entry.v.as_mut_slice().iter_mut())
                .zip(param.grad.as_slice().iter().zip(param.value.as_mut_slice().iter_mut()).map(|(g, x)| (*g, x)))
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                *value -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_roughly_lr() {
        let mut p = Param::new("p", Matrix::full(1, 1, 0.0));
        p.grad = Matrix::full(1, 1, 10.0);
        let mut opt = Adam::new(0.001);
        opt.step(&mut [&mut p]);
        // With bias correction, the first step is ≈ lr regardless of grad scale.
        assert!((p.value[(0, 0)] + 0.001).abs() < 1e-4);
    }

    #[test]
    fn direction_follows_negative_gradient() {
        let mut p = Param::new("p", Matrix::row_vector(&[0.0, 0.0]));
        p.grad = Matrix::row_vector(&[1.0, -1.0]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!(p.value[(0, 0)] < 0.0 && p.value[(0, 1)] > 0.0);
    }

    #[test]
    fn per_parameter_state_is_independent() {
        let mut a = Param::new("a", Matrix::full(1, 1, 0.0));
        let mut b = Param::new("b", Matrix::full(1, 1, 0.0));
        a.grad = Matrix::full(1, 1, 1.0);
        b.grad = Matrix::full(1, 1, 0.0);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut a, &mut b]);
        assert!(a.value[(0, 0)] != 0.0);
        assert_eq!(b.value[(0, 0)], 0.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.001);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
