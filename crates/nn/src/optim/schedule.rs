//! Learning-rate schedules and early stopping.

/// A learning-rate schedule maps an epoch index (0-based) to a learning
/// rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch`.
    fn learning_rate(&self, epoch: usize) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn learning_rate(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Step decay: the learning rate is multiplied by `factor` every `every`
/// epochs.  The paper's sentiment configuration halves the Adadelta learning
/// rate every 5 epochs (`StepDecay::new(1.0, 0.5, 5)`).
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    initial: f32,
    factor: f32,
    every: usize,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    pub fn new(initial: f32, factor: f32, every: usize) -> Self {
        assert!(every > 0, "StepDecay: `every` must be positive");
        Self { initial, factor, every }
    }
}

impl LrSchedule for StepDecay {
    fn learning_rate(&self, epoch: usize) -> f32 {
        self.initial * self.factor.powi((epoch / self.every) as i32)
    }
}

/// Early stopping on a validation metric where **larger is better**
/// (accuracy / F1).  The paper uses patience 5 on the development split.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    best_epoch: usize,
    epochs_since_best: usize,
    min_delta: f32,
}

impl EarlyStopping {
    /// Creates an early-stopping monitor with the given patience.
    pub fn new(patience: usize) -> Self {
        Self { patience, best: f32::NEG_INFINITY, best_epoch: 0, epochs_since_best: 0, min_delta: 0.0 }
    }

    /// Requires improvements to exceed `min_delta` to reset the counter.
    pub fn with_min_delta(mut self, min_delta: f32) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// Records the metric for `epoch`; returns `true` when training should
    /// stop (no improvement for more than `patience` epochs).
    pub fn update(&mut self, epoch: usize, metric: f32) -> bool {
        if metric > self.best + self.min_delta {
            self.best = metric;
            self.best_epoch = epoch;
            self.epochs_since_best = 0;
        } else {
            self.epochs_since_best += 1;
        }
        self.epochs_since_best > self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// Epoch at which the best metric was observed.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = ConstantLr(0.01);
        assert_eq!(s.learning_rate(0), 0.01);
        assert_eq!(s.learning_rate(100), 0.01);
    }

    #[test]
    fn step_decay_halves_every_five_epochs() {
        let s = StepDecay::new(1.0, 0.5, 5);
        assert_eq!(s.learning_rate(0), 1.0);
        assert_eq!(s.learning_rate(4), 1.0);
        assert_eq!(s.learning_rate(5), 0.5);
        assert_eq!(s.learning_rate(10), 0.25);
        assert_eq!(s.learning_rate(14), 0.25);
    }

    #[test]
    fn early_stopping_triggers_after_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(0, 0.5));
        assert!(!es.update(1, 0.6)); // improvement
        assert!(!es.update(2, 0.55));
        assert!(!es.update(3, 0.58));
        assert!(es.update(4, 0.57)); // third epoch without improvement > patience=2
        assert_eq!(es.best_epoch(), 1);
        assert!((es.best() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn early_stopping_min_delta() {
        let mut es = EarlyStopping::new(1).with_min_delta(0.05);
        assert!(!es.update(0, 0.5));
        assert!(!es.update(1, 0.52)); // below min_delta: counts as no improvement
        assert!(es.update(2, 0.53));
    }
}
