//! Optimisers and learning-rate schedules.
//!
//! The paper trains the sentiment CNN with Adadelta (learning rate 1.0,
//! halved every 5 epochs) and the NER tagger with Adam (learning rate
//! 0.001).  SGD with momentum is included as a simple reference optimiser
//! and for the ablation/bench harness.

pub mod adadelta;
pub mod adam;
pub mod schedule;
pub mod sgd;

pub use adadelta::Adadelta;
pub use adam::Adam;
pub use schedule::{ConstantLr, EarlyStopping, LrSchedule, StepDecay};
pub use sgd::Sgd;

use crate::module::Param;

/// A first-order optimiser operating on [`Param`]s.
///
/// The caller is responsible for having averaged the gradient accumulators
/// over the mini-batch (e.g. via `Module::scale_grads(1.0 / batch_len)`)
/// before calling [`Optimizer::step`], and for zeroing them afterwards.
pub trait Optimizer {
    /// Applies one update step to the given parameters using their
    /// accumulated gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Sets the global learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Current global learning rate.
    fn learning_rate(&self) -> f32;
}

/// Applies L2 weight decay directly to the gradient accumulators
/// (`grad += decay * value`), the convention used by all optimisers here.
pub(crate) fn apply_weight_decay(param: &mut Param, decay: f32) {
    if decay == 0.0 {
        return;
    }
    let Param { value, grad, .. } = param;
    lncl_tensor::ops::axpy(decay, value.as_slice(), grad.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Binding, Module};
    use lncl_autograd::Tape;
    use lncl_tensor::{Matrix, TensorRng};

    /// A tiny quadratic problem: minimise ||x W - y||^2 over W.
    struct Quadratic {
        w: Param,
    }

    impl Module for Quadratic {
        fn params(&self) -> Vec<&Param> {
            vec![&self.w]
        }
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.w]
        }
    }

    /// Returns (initial loss, final loss) on the quadratic problem.
    fn train_with(optimizer: &mut dyn Optimizer, steps: usize) -> (f32, f32) {
        let mut rng = TensorRng::seed_from_u64(7);
        let x = rng.normal_matrix(16, 3, 1.0);
        let true_w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.5], &[-1.0, 1.0]]);
        let y = lncl_tensor::ops::matmul(&x, &true_w);
        let mut model = Quadratic { w: Param::new("w", rng.normal_matrix(3, 2, 0.1)) };
        let mut first_loss = f32::INFINITY;
        let mut last_loss = f32::INFINITY;
        for step in 0..steps {
            model.zero_grad();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let xv = tape.constant(x.clone());
            let wv = binding.bind(&mut tape, &model.w);
            let pred = tape.matmul(xv, wv);
            let loss = tape.mse(pred, y.clone());
            let value = tape.scalar(loss);
            if step == 0 {
                first_loss = value;
            }
            last_loss = value;
            tape.backward(loss);
            binding.accumulate(&tape, model.params_mut());
            let mut params = model.params_mut();
            optimizer.step(&mut params);
        }
        (first_loss, last_loss)
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let (_, last) = train_with(&mut opt, 200);
        assert!(last < 1e-2, "final loss {last}");
    }

    #[test]
    fn adam_reduces_quadratic_loss() {
        let mut opt = Adam::new(0.05);
        let (_, last) = train_with(&mut opt, 300);
        assert!(last < 1e-2, "final loss {last}");
    }

    #[test]
    fn adadelta_reduces_quadratic_loss() {
        // Adadelta warms up slowly because its accumulated-update estimate
        // starts at zero; assert a large relative improvement rather than an
        // absolute threshold.
        let mut opt = Adadelta::new(1.0);
        let (first, last) = train_with(&mut opt, 800);
        assert!(last < first * 0.2, "loss should drop by >5x: {first} -> {last}");
    }

    #[test]
    fn weight_decay_adds_parameter_to_gradient() {
        let mut p = Param::new("p", Matrix::full(1, 2, 2.0));
        p.grad.fill(1.0);
        apply_weight_decay(&mut p, 0.5);
        assert_eq!(p.grad, Matrix::full(1, 2, 2.0));
    }
}
