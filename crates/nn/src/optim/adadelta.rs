//! Adadelta optimiser (Zeiler, 2012) — the optimiser the paper (following
//! Kim 2014) uses for the sentiment CNN with learning rate 1.0.

use super::{apply_weight_decay, Optimizer};
use crate::module::Param;
use lncl_tensor::Matrix;
use std::collections::HashMap;

struct AdadeltaState {
    avg_sq_grad: Matrix,
    avg_sq_update: Matrix,
}

/// Adadelta keeps running averages of squared gradients and squared updates
/// and rescales each step so no hand-tuned base learning rate is required
/// (the `lr` here is the global multiplier, 1.0 in the paper).
pub struct Adadelta {
    lr: f32,
    rho: f32,
    eps: f32,
    weight_decay: f32,
    state: HashMap<u64, AdadeltaState>,
}

impl Adadelta {
    /// Creates Adadelta with `rho = 0.95`, `eps = 1e-6`.
    pub fn new(lr: f32) -> Self {
        Self { lr, rho: 0.95, eps: 1e-6, weight_decay: 0.0, state: HashMap::new() }
    }

    /// Overrides the decay constant `rho`.
    pub fn with_rho(mut self, rho: f32) -> Self {
        self.rho = rho;
        self
    }

    /// Enables L2 weight decay.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            apply_weight_decay(param, self.weight_decay);
            let entry = self.state.entry(param.id()).or_insert_with(|| AdadeltaState {
                avg_sq_grad: Matrix::zeros(param.value.rows(), param.value.cols()),
                avg_sq_update: Matrix::zeros(param.value.rows(), param.value.cols()),
            });
            for i in 0..param.value.len() {
                let g = param.grad.as_slice()[i];
                let eg = &mut entry.avg_sq_grad.as_mut_slice()[i];
                *eg = self.rho * *eg + (1.0 - self.rho) * g * g;
                let ex = &mut entry.avg_sq_update.as_mut_slice()[i];
                let update = ((*ex + self.eps).sqrt() / (*eg + self.eps).sqrt()) * g;
                *ex = self.rho * *ex + (1.0 - self.rho) * update * update;
                param.value.as_mut_slice()[i] -= self.lr * update;
            }
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let mut p = Param::new("p", Matrix::full(1, 1, 1.0));
        p.grad = Matrix::full(1, 1, 2.0);
        let mut opt = Adadelta::new(1.0);
        opt.step(&mut [&mut p]);
        assert!(p.value[(0, 0)] < 1.0);
    }

    #[test]
    fn zero_gradient_leaves_value_unchanged() {
        let mut p = Param::new("p", Matrix::full(1, 2, 3.0));
        let mut opt = Adadelta::new(1.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value, Matrix::full(1, 2, 3.0));
    }

    #[test]
    fn learning_rate_scales_updates() {
        let make = || {
            let mut p = Param::new("p", Matrix::full(1, 1, 0.0));
            p.grad = Matrix::full(1, 1, 1.0);
            p
        };
        let mut p_full = make();
        let mut p_half = make();
        Adadelta::new(1.0).step(&mut [&mut p_full]);
        Adadelta::new(0.5).step(&mut [&mut p_half]);
        assert!((p_half.value[(0, 0)] - 0.5 * p_full.value[(0, 0)]).abs() < 1e-7);
    }
}
