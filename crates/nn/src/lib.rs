//! # lncl-nn
//!
//! Neural-network building blocks for the Logic-LNCL reproduction:
//!
//! * [`module`] — [`Param`], parameter/tape [`Binding`]
//!   and the [`Module`] trait;
//! * [`layers`] — embeddings, linear layers, text convolutions, GRU and
//!   dropout;
//! * [`optim`] — SGD, Adam and Adadelta plus learning-rate schedules and
//!   early stopping (matching the paper's Table I configuration);
//! * [`models`] — the paper's two architectures
//!   ([`SentimentCnn`](models::SentimentCnn), [`NerConvGru`](models::NerConvGru))
//!   behind the [`InstanceClassifier`] trait.
//!
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root.)
//!
//! ```
//! use lncl_nn::models::{InstanceClassifier, SentimentCnn, SentimentCnnConfig};
//! use lncl_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = SentimentCnn::new(SentimentCnnConfig { vocab_size: 50, ..Default::default() }, &mut rng);
//! let probs = model.predict_proba(&[1, 2, 3, 4, 5]);
//! assert_eq!(probs.shape(), (1, 2));
//! ```

pub mod layers;
pub mod models;
pub mod module;
pub mod optim;

pub use models::InstanceClassifier;
pub use module::{Binding, Module, Param};
