//! Parameters, parameter bindings and the [`Module`] trait.
//!
//! Layers own their parameters as plain [`Param`] values (a value matrix plus
//! a gradient accumulator).  During a forward pass the parameters are copied
//! onto the autograd [`Tape`] through a [`Binding`], which remembers the
//! tape handle of each parameter so that, after `Tape::backward`, the
//! gradients can be pulled back into the `Param` accumulators with
//! [`Binding::accumulate`].  Optimisers then operate purely on `Param`s.

use lncl_autograd::{Tape, Var};
use lncl_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// A trainable parameter: a value matrix, a gradient accumulator and a
/// stable identity used by optimisers to attach per-parameter state.
#[derive(Debug, Clone)]
pub struct Param {
    id: u64,
    /// Human-readable name, e.g. `"sentiment_cnn.conv3.weight"`.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (summed over the instances seen since the last
    /// [`Param::zero_grad`] call).
    pub grad: Matrix,
}

impl Param {
    /// Creates a parameter with a zeroed gradient accumulator.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed), name: name.into(), value, grad }
    }

    /// Stable identity of this parameter (unique per process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// How a parameter was placed on the tape.
enum Bound {
    /// The whole parameter value was copied onto the tape.
    Full(Var),
    /// Only the listed rows were copied (an embedding-style lookup); the
    /// leaf's gradient is scattered back into the parameter's rows on
    /// [`Binding::accumulate`].
    Gathered { var: Var, indices: Vec<usize> },
}

/// Per-forward-pass association between parameters and tape leaves.
#[derive(Default)]
pub struct Binding {
    vars: HashMap<u64, Bound>,
}

impl Binding {
    /// Creates an empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the tape handle for `param`, creating a leaf holding a copy
    /// of the parameter value on first use.
    ///
    /// # Panics
    /// Panics if the parameter was bound with [`Binding::bind_gathered`] on
    /// this pass — the gathered leaf holds only a row subset and must not
    /// be aliased as the full value.
    pub fn bind(&mut self, tape: &mut Tape, param: &Param) -> Var {
        match self.vars.get(&param.id) {
            Some(Bound::Full(var)) => return *var,
            Some(Bound::Gathered { .. }) => {
                panic!("bind: parameter {} was bound as a gathered row subset this pass", param.name)
            }
            None => {}
        }
        let var = tape.leaf(param.value.clone());
        self.vars.insert(param.id, Bound::Full(var));
        var
    }

    /// Binds only the listed rows of `param` (an embedding lookup): the
    /// tape leaf holds the gathered `indices.len() x cols` matrix instead
    /// of a copy of the whole table, and [`Binding::accumulate`] scatters
    /// the leaf's gradient back into the parameter's rows.  The same
    /// parameter must not also be bound in full on this pass.
    pub fn bind_gathered(&mut self, tape: &mut Tape, param: &Param, indices: &[usize]) -> Var {
        assert!(!self.vars.contains_key(&param.id), "bind_gathered: parameter {} already bound this pass", param.name);
        let var = tape.leaf(lncl_tensor::ops::gather_rows(&param.value, indices));
        self.vars.insert(param.id, Bound::Gathered { var, indices: indices.to_vec() });
        var
    }

    /// Whether `param` was bound during this pass.
    pub fn is_bound(&self, param: &Param) -> bool {
        self.vars.contains_key(&param.id)
    }

    /// Adds the tape gradients of every bound parameter into the parameter
    /// gradient accumulators.  Call after `Tape::backward` (before it,
    /// gradients are unmaterialised and nothing is accumulated).
    pub fn accumulate<'a>(&self, tape: &Tape, params: impl IntoIterator<Item = &'a mut Param>) {
        for param in params {
            match self.vars.get(&param.id) {
                None => {}
                Some(Bound::Full(var)) => {
                    let grad = tape.grad(*var);
                    if !grad.is_empty() {
                        lncl_tensor::ops::add_assign(&mut param.grad, grad);
                    }
                }
                Some(Bound::Gathered { var, indices }) => {
                    let grad = tape.grad(*var);
                    if grad.is_empty() {
                        continue;
                    }
                    // combine duplicate indices first (in occurrence
                    // order), matching the accumulation order of a scatter
                    // into a zeroed full-size gradient
                    let mut combined: Vec<(usize, Vec<f32>)> = Vec::with_capacity(indices.len());
                    for (r, &idx) in indices.iter().enumerate() {
                        match combined.iter_mut().find(|(i, _)| *i == idx) {
                            Some((_, acc)) => {
                                for (a, g) in acc.iter_mut().zip(grad.row(r)) {
                                    *a += g;
                                }
                            }
                            None => combined.push((idx, grad.row(r).to_vec())),
                        }
                    }
                    for (idx, row) in &combined {
                        for (d, g) in param.grad.row_mut(*idx).iter_mut().zip(row) {
                            *d += g;
                        }
                    }
                }
            }
        }
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when nothing has been bound yet.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// Anything that owns trainable parameters.
pub trait Module {
    /// Immutable views of all parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable views of all parameters (same order as [`Module::params`]).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Clears every gradient accumulator.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Scales every accumulated gradient by `factor` (used to average
    /// gradients over a mini-batch before the optimiser step).
    fn scale_grads(&mut self, factor: f32) {
        for p in self.params_mut() {
            p.grad.map_inplace(|g| g * factor);
        }
    }

    /// L2 norm of the concatenated gradient vector (for clipping /
    /// diagnostics).  The sum of squares runs over eight independent
    /// accumulators (combined in a fixed order, so the result is
    /// deterministic) — a strictly sequential float sum is latency-bound
    /// and an order of magnitude slower.
    fn grad_norm(&self) -> f32 {
        fn sum_squares(values: &[f32]) -> f32 {
            let mut lanes = [0.0f32; 8];
            let split = values.len() - values.len() % 8;
            for chunk in values[..split].chunks_exact(8) {
                for (lane, &v) in lanes.iter_mut().zip(chunk) {
                    *lane += v * v;
                }
            }
            let mut tail = 0.0;
            for &v in &values[split..] {
                tail += v * v;
            }
            let pairs = [lanes[0] + lanes[4], lanes[1] + lanes[5], lanes[2] + lanes[6], lanes[3] + lanes[7]];
            ((pairs[0] + pairs[2]) + (pairs[1] + pairs[3])) + tail
        }
        self.params().iter().map(|p| sum_squares(p.grad.as_slice())).sum::<f32>().sqrt()
    }

    /// Clips the global gradient norm to `max_norm` (no-op if already
    /// smaller).  Returns the pre-clipping norm.
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.scale_grads(scale);
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn params(&self) -> Vec<&Param> {
            vec![&self.a, &self.b]
        }
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.a, &mut self.b]
        }
    }

    fn toy() -> Toy {
        Toy { a: Param::new("a", Matrix::full(2, 2, 1.0)), b: Param::new("b", Matrix::full(1, 3, 2.0)) }
    }

    #[test]
    fn param_ids_are_unique() {
        let p1 = Param::new("x", Matrix::zeros(1, 1));
        let p2 = Param::new("x", Matrix::zeros(1, 1));
        assert_ne!(p1.id(), p2.id());
    }

    #[test]
    fn num_parameters_counts_entries() {
        assert_eq!(toy().num_parameters(), 7);
    }

    #[test]
    fn binding_binds_once_and_accumulates() {
        let mut model = toy();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let va1 = binding.bind(&mut tape, &model.a);
        let va2 = binding.bind(&mut tape, &model.a);
        assert_eq!(va1, va2, "same param must map to the same tape leaf");
        let s = tape.sum_all(va1);
        tape.backward(s);
        binding.accumulate(&tape, model.params_mut());
        assert!(model.a.grad.as_slice().iter().all(|&g| g == 1.0));
        assert!(model.b.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_and_scale_grads() {
        let mut model = toy();
        model.a.grad.fill(4.0);
        model.scale_grads(0.5);
        assert!(model.a.grad.as_slice().iter().all(|&g| g == 2.0));
        model.zero_grad();
        assert!(model.a.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut model = toy();
        model.a.grad.fill(3.0);
        let norm_before = model.grad_norm();
        let reported = model.clip_grad_norm(1.0);
        assert!((reported - norm_before).abs() < 1e-5);
        assert!((model.grad_norm() - 1.0).abs() < 1e-5);
        // already small: no change
        let reported2 = model.clip_grad_norm(10.0);
        assert!((reported2 - 1.0).abs() < 1e-5);
        assert!((model.grad_norm() - 1.0).abs() < 1e-5);
    }
}
