//! The two classifier architectures evaluated in the paper (Figure 5),
//! rebuilt at CPU-friendly widths, plus the [`InstanceClassifier`] trait the
//! Logic-LNCL trainer and all baselines are written against.

pub mod ner_conv_gru;
pub mod sentiment_cnn;

pub use ner_conv_gru::{NerConvGru, NerConvGruConfig};
pub use sentiment_cnn::{SentimentCnn, SentimentCnnConfig};

use crate::module::{Binding, Module};
use lncl_autograd::{Tape, Var};
use lncl_tensor::{stats, Matrix, TensorRng};

/// A type-erased classifier covering both of the paper's architectures.
///
/// The polymorphic [`CrowdMethod`](https://docs.rs/logic-lncl) API runs every
/// compared method through trait objects, so the per-method runners cannot be
/// generic over the model type.  `AnyModel` closes that gap: a `RunContext`
/// carries a `Fn(u64) -> AnyModel` factory and the monomorphic trainers see a
/// single concrete type that dispatches to whichever architecture the dataset
/// needs.
// Both variants are parameter handles whose weight matrices live on the
// heap; the stack-size gap clippy flags is irrelevant next to that.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// The sentence-level sentiment CNN (Kim-style).
    Sentiment(SentimentCnn),
    /// The token-level convolution + GRU NER tagger.
    Ner(NerConvGru),
}

impl From<SentimentCnn> for AnyModel {
    fn from(model: SentimentCnn) -> Self {
        AnyModel::Sentiment(model)
    }
}

impl From<NerConvGru> for AnyModel {
    fn from(model: NerConvGru) -> Self {
        AnyModel::Ner(model)
    }
}

impl Module for AnyModel {
    fn params(&self) -> Vec<&crate::module::Param> {
        match self {
            AnyModel::Sentiment(m) => m.params(),
            AnyModel::Ner(m) => m.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut crate::module::Param> {
        match self {
            AnyModel::Sentiment(m) => m.params_mut(),
            AnyModel::Ner(m) => m.params_mut(),
        }
    }
}

impl InstanceClassifier for AnyModel {
    fn num_classes(&self) -> usize {
        match self {
            AnyModel::Sentiment(m) => m.num_classes(),
            AnyModel::Ner(m) => m.num_classes(),
        }
    }

    fn predict_proba(&self, tokens: &[usize]) -> Matrix {
        // delegate so both architectures take their tape-free eval paths
        match self {
            AnyModel::Sentiment(m) => m.predict_proba(tokens),
            AnyModel::Ner(m) => m.predict_proba(tokens),
        }
    }

    fn forward_logits(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        tokens: &[usize],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        match self {
            AnyModel::Sentiment(m) => m.forward_logits(tape, binding, tokens, training, rng),
            AnyModel::Ner(m) => m.forward_logits(tape, binding, tokens, training, rng),
        }
    }
}

/// A classifier that maps a token sequence to per-unit class logits.
///
/// * For sentence-level classification (sentiment) the output has **one
///   row**: the class logits of the whole sentence.
/// * For sequence labelling (NER) the output has **one row per token**.
///
/// This is the only interface the Logic-LNCL trainer, the EM baselines and
/// the crowd-layer baselines need, which is what lets a single generic
/// trainer cover both tasks exactly as the paper describes.
pub trait InstanceClassifier: Module {
    /// Number of classes `K`.
    fn num_classes(&self) -> usize;

    /// Runs the forward pass on the tape, returning a `units x K` logits
    /// node.  `training` enables dropout; `rng` supplies its randomness.
    fn forward_logits(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        tokens: &[usize],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var;

    /// Evaluation-mode class probabilities (`units x K`), softmax of
    /// [`InstanceClassifier::forward_logits`] with dropout disabled.
    fn predict_proba(&self, tokens: &[usize]) -> Matrix {
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        // dropout is disabled in eval mode, so the rng seed is irrelevant.
        let mut rng = TensorRng::seed_from_u64(0);
        let logits = self.forward_logits(&mut tape, &mut binding, tokens, false, &mut rng);
        stats::softmax_rows(tape.value(logits))
    }

    /// Evaluation-mode hard predictions (argmax per unit).
    fn predict(&self, tokens: &[usize]) -> Vec<usize> {
        stats::argmax_rows(&self.predict_proba(tokens))
    }
}
