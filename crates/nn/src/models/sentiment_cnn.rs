//! The Kim-2014 style sentence CNN used for the sentiment-polarity task
//! (left half of Figure 5 in the paper): word embeddings → parallel
//! convolutions with several window sizes → ReLU → max-over-time pooling →
//! dropout → fully-connected softmax layer.
//!
//! The paper uses 300-d static word2vec embeddings and 100 feature maps per
//! window on a GPU; this reproduction trains much smaller trainable
//! embeddings and fewer filters so that the full experiment grid runs on a
//! CPU in minutes (see DESIGN.md §1).

use crate::layers::{Dropout, Embedding, Linear, TextConv};
use crate::models::InstanceClassifier;
use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::TensorRng;

/// Hyper-parameters of the sentiment CNN.
#[derive(Debug, Clone)]
pub struct SentimentCnnConfig {
    /// Vocabulary size (token id 0 is the padding token).
    pub vocab_size: usize,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Convolution window sizes (the paper uses 3, 4, 5).
    pub windows: Vec<usize>,
    /// Feature maps per window size.
    pub filters_per_window: usize,
    /// Dropout keep probability on the penultimate layer (paper: 0.5).
    pub dropout_keep: f32,
    /// Number of output classes (2 for sentiment polarity).
    pub num_classes: usize,
}

impl Default for SentimentCnnConfig {
    fn default() -> Self {
        Self {
            vocab_size: 1000,
            embedding_dim: 24,
            windows: vec![3, 4, 5],
            filters_per_window: 16,
            dropout_keep: 0.5,
            num_classes: 2,
        }
    }
}

/// The sentence-level CNN classifier.
#[derive(Debug, Clone)]
pub struct SentimentCnn {
    embedding: Embedding,
    conv: TextConv,
    dropout: Dropout,
    output: Linear,
    config: SentimentCnnConfig,
}

impl SentimentCnn {
    /// Builds the model with randomly initialised parameters.
    pub fn new(config: SentimentCnnConfig, rng: &mut TensorRng) -> Self {
        assert!(config.num_classes >= 2, "SentimentCnn: need at least two classes");
        let embedding = Embedding::new("sentiment_cnn.embedding", config.vocab_size, config.embedding_dim, rng);
        let conv =
            TextConv::new("sentiment_cnn", config.embedding_dim, &config.windows, config.filters_per_window, rng);
        let dropout = Dropout::new(config.dropout_keep);
        let output = Linear::new("sentiment_cnn.output", conv.output_dim(), config.num_classes, rng);
        Self { embedding, conv, dropout, output, config }
    }

    /// The model configuration.
    pub fn config(&self) -> &SentimentCnnConfig {
        &self.config
    }

    /// Pads (with token 0) so the sequence is at least as long as the
    /// largest convolution window.
    fn padded(&self, tokens: &[usize]) -> Vec<usize> {
        let min_len = self.conv.max_window();
        let mut out = tokens.to_vec();
        if out.is_empty() {
            out.push(0);
        }
        while out.len() < min_len {
            out.push(0);
        }
        out
    }

    /// Eval-mode logits straight through the fused tensor ops — no tape,
    /// no gradient bookkeeping.  Produces exactly the values of the tape
    /// forward with dropout disabled.
    pub fn forward_logits_matrix(&self, tokens: &[usize]) -> lncl_tensor::Matrix {
        let tokens = self.padded(tokens);
        let embedded = self.embedding.lookup(&tokens);
        let features = self.conv.forward_matrix(&embedded);
        // dropout is the identity in eval mode
        self.output.forward_matrix(&features)
    }
}

impl Module for SentimentCnn {
    fn params(&self) -> Vec<&Param> {
        let mut out = self.embedding.params();
        out.extend(self.conv.params());
        out.extend(self.output.params());
        out
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.embedding.params_mut();
        out.extend(self.conv.params_mut());
        out.extend(self.output.params_mut());
        out
    }
}

impl InstanceClassifier for SentimentCnn {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn predict_proba(&self, tokens: &[usize]) -> lncl_tensor::Matrix {
        let mut probs = self.forward_logits_matrix(tokens);
        lncl_tensor::stats::softmax_rows_in_place(&mut probs);
        probs
    }

    fn forward_logits(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        tokens: &[usize],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let tokens = self.padded(tokens);
        let embedded = self.embedding.forward(tape, binding, &tokens);
        let features = self.conv.forward(tape, binding, embedded);
        let dropped = self.dropout.forward(tape, features, rng, training);
        self.output.forward(tape, binding, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lncl_tensor::stats;

    fn tiny_model(seed: u64) -> SentimentCnn {
        let mut rng = TensorRng::seed_from_u64(seed);
        SentimentCnn::new(
            SentimentCnnConfig {
                vocab_size: 30,
                embedding_dim: 8,
                windows: vec![2, 3],
                filters_per_window: 4,
                dropout_keep: 0.5,
                num_classes: 2,
            },
            &mut rng,
        )
    }

    #[test]
    fn forward_produces_single_row_of_logits() {
        let model = tiny_model(0);
        let probs = model.predict_proba(&[1, 2, 3, 4, 5]);
        assert_eq!(probs.shape(), (1, 2));
        assert!((probs.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn short_and_empty_sentences_are_padded() {
        let model = tiny_model(1);
        // shorter than the largest window (3) and even empty must not panic.
        let p1 = model.predict_proba(&[4]);
        let p2 = model.predict_proba(&[]);
        assert_eq!(p1.shape(), (1, 2));
        assert_eq!(p2.shape(), (1, 2));
    }

    #[test]
    fn training_step_reduces_loss_on_single_example() {
        use crate::optim::{Adadelta, Optimizer};
        let mut model = tiny_model(2);
        let mut opt = Adadelta::new(1.0);
        let mut rng = TensorRng::seed_from_u64(9);
        let tokens = [3usize, 7, 9, 11, 2];
        let target = lncl_tensor::Matrix::row_vector(&[1.0, 0.0]);
        let mut losses = Vec::new();
        for _ in 0..30 {
            model.zero_grad();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let logits = model.forward_logits(&mut tape, &mut binding, &tokens, false, &mut rng);
            let loss = tape.softmax_cross_entropy(logits, target.clone());
            losses.push(tape.scalar(loss));
            tape.backward(loss);
            binding.accumulate(&tape, model.params_mut());
            let mut params = model.params_mut();
            opt.step(&mut params);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss should at least halve: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn tape_free_eval_matches_tape_forward_exactly() {
        let model = tiny_model(7);
        for tokens in [vec![1usize, 5, 9, 2, 7, 3], vec![4], vec![]] {
            let mut tape = Tape::new();
            let mut binding = crate::module::Binding::new();
            let mut rng = TensorRng::seed_from_u64(0);
            let logits = model.forward_logits(&mut tape, &mut binding, &tokens, false, &mut rng);
            assert_eq!(
                tape.value(logits),
                &model.forward_logits_matrix(&tokens),
                "eval path must be bitwise identical for {tokens:?}"
            );
        }
    }

    #[test]
    fn predict_agrees_with_argmax_of_proba() {
        let model = tiny_model(3);
        let tokens = [5usize, 6, 7, 8];
        let proba = model.predict_proba(&tokens);
        assert_eq!(model.predict(&tokens), stats::argmax_rows(&proba));
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let model = tiny_model(4);
        let emb = 30 * 8;
        let conv = (2 * 8 * 4 + 4) + (3 * 8 * 4 + 4);
        let out = 2 * 4 * 2 + 2;
        assert_eq!(model.num_parameters(), emb + conv + out);
    }
}
