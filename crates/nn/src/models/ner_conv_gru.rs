//! The convolution + GRU sequence tagger used for the NER task (right half
//! of Figure 5 in the paper): word embeddings → same-length convolution →
//! dropout → GRU → per-token fully-connected softmax layer.
//!
//! The paper uses 300-d GloVe embeddings, 512 convolution features and a
//! 50-unit GRU; this reproduction keeps the same topology at reduced widths
//! (see DESIGN.md §1).

use crate::layers::{Dropout, Embedding, Gru, Linear, SameConv};
use crate::models::InstanceClassifier;
use crate::module::{Binding, Module, Param};
use lncl_autograd::{Tape, Var};
use lncl_tensor::TensorRng;

/// Hyper-parameters of the NER tagger.
#[derive(Debug, Clone)]
pub struct NerConvGruConfig {
    /// Vocabulary size (token id 0 is the padding token).
    pub vocab_size: usize,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Convolution window (paper: 5; must be odd).
    pub conv_window: usize,
    /// Convolution output features.
    pub conv_features: usize,
    /// GRU hidden size (paper: 50).
    pub gru_hidden: usize,
    /// Dropout keep probability after the convolution (paper: 0.5).
    pub dropout_keep: f32,
    /// Number of BIO classes (9 for CoNLL-2003).
    pub num_classes: usize,
}

impl Default for NerConvGruConfig {
    fn default() -> Self {
        Self {
            vocab_size: 1000,
            embedding_dim: 24,
            conv_window: 5,
            conv_features: 32,
            gru_hidden: 24,
            dropout_keep: 0.5,
            num_classes: 9,
        }
    }
}

/// The per-token sequence tagger.
#[derive(Debug, Clone)]
pub struct NerConvGru {
    embedding: Embedding,
    conv: SameConv,
    dropout: Dropout,
    gru: Gru,
    output: Linear,
    config: NerConvGruConfig,
}

impl NerConvGru {
    /// Builds the model with randomly initialised parameters.
    pub fn new(config: NerConvGruConfig, rng: &mut TensorRng) -> Self {
        assert!(config.num_classes >= 2, "NerConvGru: need at least two classes");
        let embedding = Embedding::new("ner_conv_gru.embedding", config.vocab_size, config.embedding_dim, rng);
        let conv =
            SameConv::new("ner_conv_gru.conv", config.embedding_dim, config.conv_features, config.conv_window, rng);
        let dropout = Dropout::new(config.dropout_keep);
        let gru = Gru::new("ner_conv_gru.gru", config.conv_features, config.gru_hidden, rng);
        let output = Linear::new("ner_conv_gru.output", config.gru_hidden, config.num_classes, rng);
        Self { embedding, conv, dropout, gru, output, config }
    }

    /// The model configuration.
    pub fn config(&self) -> &NerConvGruConfig {
        &self.config
    }

    /// Eval-mode logits straight through the fused tensor ops — no tape,
    /// no gradient bookkeeping.  Produces exactly the values of the tape
    /// forward with dropout disabled.
    pub fn forward_logits_matrix(&self, tokens: &[usize]) -> lncl_tensor::Matrix {
        let tokens: Vec<usize> = if tokens.is_empty() { vec![0] } else { tokens.to_vec() };
        let embedded = self.embedding.lookup(&tokens);
        let conv = self.conv.forward_matrix(&embedded);
        // dropout is the identity in eval mode
        let hidden = self.gru.forward_matrix(&conv);
        self.output.forward_matrix(&hidden)
    }
}

impl Module for NerConvGru {
    fn params(&self) -> Vec<&Param> {
        let mut out = self.embedding.params();
        out.extend(self.conv.params());
        out.extend(self.gru.params());
        out.extend(self.output.params());
        out
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.embedding.params_mut();
        out.extend(self.conv.params_mut());
        out.extend(self.gru.params_mut());
        out.extend(self.output.params_mut());
        out
    }
}

impl InstanceClassifier for NerConvGru {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn predict_proba(&self, tokens: &[usize]) -> lncl_tensor::Matrix {
        let mut probs = self.forward_logits_matrix(tokens);
        lncl_tensor::stats::softmax_rows_in_place(&mut probs);
        probs
    }

    fn forward_logits(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        tokens: &[usize],
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let tokens: Vec<usize> = if tokens.is_empty() { vec![0] } else { tokens.to_vec() };
        let embedded = self.embedding.forward(tape, binding, &tokens);
        let conv = self.conv.forward(tape, binding, embedded);
        let dropped = self.dropout.forward(tape, conv, rng, training);
        let hidden = self.gru.forward(tape, binding, dropped);
        self.output.forward(tape, binding, hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> NerConvGru {
        let mut rng = TensorRng::seed_from_u64(seed);
        NerConvGru::new(
            NerConvGruConfig {
                vocab_size: 40,
                embedding_dim: 6,
                conv_window: 3,
                conv_features: 8,
                gru_hidden: 6,
                dropout_keep: 0.5,
                num_classes: 5,
            },
            &mut rng,
        )
    }

    #[test]
    fn one_row_of_logits_per_token() {
        let model = tiny_model(0);
        let probs = model.predict_proba(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(probs.shape(), (7, 5));
        for r in 0..probs.rows() {
            assert!((probs.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn single_token_and_empty_sequences_handled() {
        let model = tiny_model(1);
        assert_eq!(model.predict_proba(&[3]).shape(), (1, 5));
        assert_eq!(model.predict_proba(&[]).shape(), (1, 5));
    }

    #[test]
    fn training_reduces_per_token_loss() {
        use crate::optim::{Adam, Optimizer};
        let mut model = tiny_model(2);
        let mut opt = Adam::new(0.01);
        let mut rng = TensorRng::seed_from_u64(5);
        let tokens = [2usize, 9, 4, 17, 8];
        // target: class t = position % 5 as a one-hot distribution
        let target = lncl_tensor::Matrix::from_fn(5, 5, |r, c| if c == r % 5 { 1.0 } else { 0.0 });
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            model.zero_grad();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let logits = model.forward_logits(&mut tape, &mut binding, &tokens, false, &mut rng);
            let loss = tape.softmax_cross_entropy(logits, target.clone());
            let value = tape.scalar(loss);
            if step == 0 {
                first = value;
            }
            last = value;
            tape.backward(loss);
            binding.accumulate(&tape, model.params_mut());
            let mut params = model.params_mut();
            opt.step(&mut params);
        }
        assert!(last < first * 0.6, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn tape_free_eval_matches_tape_forward_exactly() {
        let model = tiny_model(7);
        for tokens in [vec![1usize, 5, 9, 2, 7, 3, 11], vec![4], vec![]] {
            let mut tape = lncl_autograd::Tape::new();
            let mut binding = Binding::new();
            let mut rng = TensorRng::seed_from_u64(0);
            let logits = model.forward_logits(&mut tape, &mut binding, &tokens, false, &mut rng);
            assert_eq!(
                tape.value(logits),
                &model.forward_logits_matrix(&tokens),
                "eval path must be bitwise identical for {tokens:?}"
            );
        }
    }

    #[test]
    fn predictions_are_valid_class_indices() {
        let model = tiny_model(3);
        let preds = model.predict(&[1, 2, 3, 4]);
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 5));
    }
}
