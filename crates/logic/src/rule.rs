//! Rule abstractions consumed by the Logic-LNCL trainer.
//!
//! Two shapes of rules cover the paper's applications:
//!
//! * [`ClassificationRule`] — instance-level rules for sentence
//!   classification.  When a rule *grounds* on an instance (e.g. the
//!   sentence contains "but"), it yields a weight and one soft rule value
//!   `v_l(x, t=k)` per class `k`.
//! * [`SequenceRuleSet`] — transition rules for sequence labelling,
//!   compiled into a `K x K` matrix of *penalties*
//!   `penalty(prev, cur) = Σ_l w_l · (1 − v_l(prev, cur))`, which the
//!   dynamic-programming projection of [`crate::sequence`] consumes.

use lncl_tensor::Matrix;

/// The grounding of one classification rule on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundedRule {
    /// Rule weight `w_l ∈ [0, 1]`.
    pub weight: f32,
    /// Soft rule value `v_l(x, t=k)` for every class `k`.
    pub values: Vec<f32>,
}

impl GroundedRule {
    /// Creates a grounding, checking ranges in debug builds.
    pub fn new(weight: f32, values: Vec<f32>) -> Self {
        debug_assert!((0.0..=1.0).contains(&weight), "rule weight must be in [0,1]");
        debug_assert!(values.iter().all(|v| (-1e-4..=1.0 + 1e-4).contains(v)), "rule values must be in [0,1]");
        Self { weight, values }
    }

    /// The per-class penalty contribution `w_l · (1 − v_l)`.
    pub fn penalties(&self) -> Vec<f32> {
        self.values.iter().map(|v| self.weight * (1.0 - v.clamp(0.0, 1.0))).collect()
    }
}

/// A provider of class probabilities for arbitrary token subsequences.
///
/// The sentiment *A-but-B* rule needs `σΘ(clause B)` — the **current
/// classifier's** prediction on the clause after "but" — so rules receive a
/// callback rather than a fixed feature.  During training this closure wraps
/// the live network; in tests it can be any function.
pub type ClauseProbs<'a> = dyn Fn(&[usize]) -> Vec<f32> + 'a;

/// An instance-level first-order rule for classification tasks.
pub trait ClassificationRule {
    /// Human-readable rule name (used in reports and the ablation tables).
    fn name(&self) -> &str;

    /// Attempts to ground the rule on an instance.  Returns `None` when the
    /// rule does not apply (e.g. the sentence has no "but"), otherwise the
    /// weight and per-class soft values `v_l(x, t=k)`.
    fn ground(&self, tokens: &[usize], clause_probs: &ClauseProbs<'_>, num_classes: usize) -> Option<GroundedRule>;
}

/// A compiled set of transition rules for sequence labelling.
#[derive(Debug, Clone)]
pub struct SequenceRuleSet {
    /// `penalty[(prev, cur)] = Σ_l w_l · (1 − v_l(prev, cur))` for every
    /// consecutive label pair.
    pub penalty: Matrix,
    /// Name of the rule set (e.g. `"ner-transitions"`).
    pub name: String,
}

impl SequenceRuleSet {
    /// Creates a rule set from an explicit penalty matrix.
    pub fn new(name: impl Into<String>, penalty: Matrix) -> Self {
        assert_eq!(penalty.rows(), penalty.cols(), "penalty matrix must be square");
        assert!(penalty.as_slice().iter().all(|&p| p >= 0.0), "penalties must be non-negative");
        Self { penalty, name: name.into() }
    }

    /// Number of classes the rule set covers.
    pub fn num_classes(&self) -> usize {
        self.penalty.rows()
    }

    /// The penalty for a specific transition.
    pub fn penalty_for(&self, prev: usize, cur: usize) -> f32 {
        self.penalty[(prev, cur)]
    }

    /// A rule set with no penalties (logic disabled); useful for ablations.
    pub fn empty(num_classes: usize, name: impl Into<String>) -> Self {
        Self { penalty: Matrix::zeros(num_classes, num_classes), name: name.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grounded_rule_penalties() {
        let g = GroundedRule::new(0.8, vec![1.0, 0.25]);
        let p = g.penalties();
        assert!((p[0] - 0.0).abs() < 1e-6);
        assert!((p[1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn sequence_rule_set_accessors() {
        let set = SequenceRuleSet::new("test", Matrix::from_rows(&[&[0.0, 1.0], &[0.5, 0.0]]));
        assert_eq!(set.num_classes(), 2);
        assert_eq!(set.penalty_for(0, 1), 1.0);
        assert_eq!(set.penalty_for(1, 0), 0.5);
        let empty = SequenceRuleSet::empty(3, "none");
        assert_eq!(empty.penalty.sum(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_penalties_rejected() {
        let _ = SequenceRuleSet::new("bad", Matrix::from_rows(&[&[0.0, -1.0], &[0.0, 0.0]]));
    }
}
