//! The posterior-regularisation projection of Eq. 14/15.
//!
//! Given the truth posterior `q_a(t)` of an instance and the grounded rules
//! with their weights, the rule-regularised target is the closed form
//!
//! ```text
//! q_b(t) ∝ q_a(t) · exp{ − Σ_l C · w_l · (1 − v_l(x, t)) }
//! ```
//!
//! which is the exact solution of the slack-relaxed KL projection problem
//! (Section V-B of the paper).  [`project_distribution`] implements the
//! closed form; [`solve_projection_reference`] solves the optimisation
//! numerically on a grid and is used by the tests to confirm the closed form.

use crate::rule::{ClassificationRule, ClauseProbs, GroundedRule};
use lncl_tensor::stats;

/// Total per-class penalties `Σ_l w_l (1 − v_l(x, k))` of all rules that
/// ground on an instance.  Rules that do not ground contribute nothing.
pub fn grounded_penalties(
    rules: &[Box<dyn ClassificationRule>],
    tokens: &[usize],
    clause_probs: &ClauseProbs<'_>,
    num_classes: usize,
) -> Vec<f32> {
    let mut totals = vec![0.0f32; num_classes];
    for rule in rules {
        if let Some(grounding) = rule.ground(tokens, clause_probs, num_classes) {
            for (t, p) in totals.iter_mut().zip(grounding.penalties()) {
                *t += p;
            }
        }
    }
    totals
}

/// Closed-form projection (Eq. 15): `q_b(k) ∝ q_a(k) · exp(−C · penalty_k)`.
///
/// `penalties[k]` must already contain `Σ_l w_l (1 − v_l(x, k))`.
pub fn project_distribution(qa: &[f32], penalties: &[f32], regularization: f32) -> Vec<f32> {
    assert_eq!(qa.len(), penalties.len(), "project_distribution: length mismatch");
    assert!(regularization >= 0.0, "regularization strength must be non-negative");
    let mut qb: Vec<f32> =
        qa.iter().zip(penalties).map(|(&q, &p)| q.max(1e-12) * (-regularization * p).exp()).collect();
    stats::normalize_in_place(&mut qb);
    qb
}

/// Convenience: grounds the rules and projects in one call.
pub fn project_with_rules(
    qa: &[f32],
    rules: &[Box<dyn ClassificationRule>],
    tokens: &[usize],
    clause_probs: &ClauseProbs<'_>,
    regularization: f32,
) -> Vec<f32> {
    let penalties = grounded_penalties(rules, tokens, clause_probs, qa.len());
    project_distribution(qa, &penalties, regularization)
}

/// Expected rule penalty `E_q[Σ_l w_l (1 − v_l)]` under a distribution `q` —
/// the quantity the slack constraints of Eq. 14 bound.
pub fn expected_penalty(q: &[f32], penalties: &[f32]) -> f32 {
    q.iter().zip(penalties).map(|(&qi, &pi)| qi * pi).sum()
}

/// Reference solver for the projection problem used in tests: minimises
/// `KL(q || qa) + C · Σ_l w_l (1 − E_q[v_l])` directly by exponentiated
/// gradient descent.  (The slack formulation of Eq. 14 with `ξ_l ≥ 0` and
/// `η*_l = C` is equivalent to this penalised objective — see Section V-B.)
pub fn solve_projection_reference(
    qa: &[f32],
    grounded: &[GroundedRule],
    regularization: f32,
    iterations: usize,
) -> Vec<f32> {
    let k = qa.len();
    let mut q: Vec<f32> = vec![1.0 / k as f32; k];
    let mut total_penalty = vec![0.0f32; k];
    for g in grounded {
        for (t, p) in total_penalty.iter_mut().zip(g.penalties()) {
            *t += p;
        }
    }
    let lr = 0.5f32;
    for _ in 0..iterations {
        // gradient of KL(q||qa) + C * Σ_k q_k penalty_k  w.r.t. q_k is
        // log(q_k / qa_k) + 1 + C * penalty_k; exponentiated-gradient update.
        let mut new_q: Vec<f32> = q
            .iter()
            .enumerate()
            .map(|(kk, &qk)| {
                let grad = (qk.max(1e-12) / qa[kk].max(1e-12)).ln() + 1.0 + regularization * total_penalty[kk];
                qk.max(1e-12) * (-lr * grad).exp()
            })
            .collect();
        stats::normalize_in_place(&mut new_q);
        q = new_q;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::sentiment_but::SentimentContrastRule;

    #[test]
    fn no_penalty_is_identity() {
        let qa = vec![0.3, 0.7];
        let qb = project_distribution(&qa, &[0.0, 0.0], 5.0);
        assert!((qb[0] - 0.3).abs() < 1e-5);
        assert!((qb[1] - 0.7).abs() < 1e-5);
    }

    #[test]
    fn penalised_class_loses_mass() {
        let qa = vec![0.5, 0.5];
        let qb = project_distribution(&qa, &[1.0, 0.0], 2.0);
        assert!(qb[0] < 0.2);
        assert!(qb[1] > 0.8);
        assert!((qb.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stronger_regularisation_moves_further() {
        let qa = vec![0.6, 0.4];
        let weak = project_distribution(&qa, &[0.5, 0.0], 1.0);
        let strong = project_distribution(&qa, &[0.5, 0.0], 10.0);
        assert!(strong[0] < weak[0]);
    }

    #[test]
    fn closed_form_matches_reference_solver() {
        let qa = vec![0.55, 0.25, 0.20];
        let grounded = vec![GroundedRule::new(0.9, vec![0.2, 1.0, 0.6]), GroundedRule::new(0.5, vec![1.0, 0.3, 0.9])];
        let mut penalties = vec![0.0f32; 3];
        for g in &grounded {
            for (t, p) in penalties.iter_mut().zip(g.penalties()) {
                *t += p;
            }
        }
        let closed = project_distribution(&qa, &penalties, 3.0);
        let reference = solve_projection_reference(&qa, &grounded, 3.0, 4000);
        for (c, r) in closed.iter().zip(&reference) {
            assert!((c - r).abs() < 5e-3, "closed {closed:?} vs reference {reference:?}");
        }
    }

    #[test]
    fn expected_penalty_decreases_after_projection() {
        let qa = vec![0.5, 0.3, 0.2];
        let penalties = vec![0.8, 0.1, 0.0];
        let qb = project_distribution(&qa, &penalties, 5.0);
        assert!(expected_penalty(&qb, &penalties) < expected_penalty(&qa, &penalties));
    }

    #[test]
    fn grounded_penalties_skip_non_grounding_rules() {
        let rule: Box<dyn ClassificationRule> = Box::new(SentimentContrastRule::new("but-rule", 42, 1.0));
        let clause = |_tokens: &[usize]| vec![0.5, 0.5];
        // token 42 absent: rule does not ground, no penalty
        let p = grounded_penalties(&[rule], &[1, 2, 3], &clause, 2);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    /// Deterministic stand-in for the former proptest sweep: seeded random
    /// (q_a, penalties, C) samples.
    fn random_cases(seed: u64, n: usize) -> Vec<(Vec<f32>, Vec<f32>, f32)> {
        let mut rng = lncl_tensor::TensorRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let qa0 = rng.uniform_range(0.01, 0.99);
                let qa = vec![qa0, 1.0 - qa0];
                let pens = vec![rng.uniform(), rng.uniform()];
                let c = rng.uniform_range(0.0, 10.0);
                (qa, pens, c)
            })
            .collect()
    }

    #[test]
    fn projection_returns_distribution() {
        for (qa, pens, c) in random_cases(7, 500) {
            let qb = project_distribution(&qa, &pens, c);
            assert!((qb.iter().sum::<f32>() - 1.0).abs() < 1e-4, "not normalised for {qa:?} {pens:?} {c}");
            assert!(qb.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn projection_never_increases_expected_penalty() {
        for (qa, pens, c) in random_cases(11, 500) {
            let qb = project_distribution(&qa, &pens, c);
            assert!(
                expected_penalty(&qb, &pens) <= expected_penalty(&qa, &pens) + 1e-5,
                "penalty increased for {qa:?} {pens:?} {c}"
            );
        }
    }
}
