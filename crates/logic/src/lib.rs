//! # lncl-logic
//!
//! Probabilistic soft logic (PSL) machinery for Logic-LNCL:
//!
//! * [`soft`] — soft truth values and the Łukasiewicz relaxations of the
//!   logical connectives (Eq. 4 of the paper);
//! * [`rule`] — the rule abstractions the trainer consumes: grounded
//!   classification rules (per-class rule values `v_l(x, t)`) and sequence
//!   transition rule sets (pairwise penalties);
//! * [`projection`] — the posterior-regularisation projection of Eq. 14/15,
//!   i.e. `q_b(t) ∝ q_a(t) · exp{-Σ_l C·w_l·(1 - v_l(x, t))}`, plus a
//!   brute-force reference solver used in tests;
//! * [`sequence`] — the dynamic-programming (forward–backward) version of
//!   the projection for label sequences, used by the NER transition rules;
//! * [`rules`] — the concrete rules evaluated in the paper: the sentiment
//!   *A-but-B* rule (Eq. 16/17), the NER transition rules (Eq. 18/19) and
//!   the deliberately weaker variants used in the Table-IV ablation.
//!
//! (Where this sits in the workspace: `ARCHITECTURE.md` at the repository
//! root.)

pub mod projection;
pub mod rule;
pub mod rules;
pub mod sequence;
pub mod soft;

pub use projection::{grounded_penalties, project_distribution};
pub use rule::{ClassificationRule, GroundedRule, SequenceRuleSet};
pub use sequence::project_sequence;
