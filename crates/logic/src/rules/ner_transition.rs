//! NER transition rules (Eq. 18/19 of the paper).
//!
//! The rules express the BIO validity constraint as weighted soft logic:
//!
//! ```text
//! equal(t_i, I-X) ⇒ equal(t_{i−1}, B-X)   (weight w_b, paper example 0.8)
//! equal(t_i, I-X) ⇒ equal(t_{i−1}, I-X)   (weight w_i, paper example 0.2)
//! ```
//!
//! For hard label pairs the rule value is 1 when the consequent holds (or
//! the antecedent does not), 0 otherwise, so the total penalty of a
//! transition `(prev, cur)` is
//! `w_b·(1 − [prev = B-X]) + w_i·(1 − [prev = I-X])` when `cur = I-X`, and 0
//! otherwise.  The label encoding follows `lncl_crowd::datasets::ner`:
//! class 0 is `O`, odd classes are `B-type`, even (non-zero) classes are
//! `I-type`.

use crate::rule::SequenceRuleSet;
use crate::soft;
use lncl_tensor::Matrix;

/// Number of BIO classes used by the NER task of the paper.
pub const NER_CLASSES: usize = 9;

/// Builds the paper's transition rule set over the 9 BIO classes with the
/// given weights for the "preceded by B-X" and "preceded by I-X" rules.
pub fn ner_transition_rules(weight_b: f32, weight_i: f32) -> SequenceRuleSet {
    transition_rules_for(NER_CLASSES, weight_b, weight_i)
}

/// The ablation variant ("our-other-rules"): the unrealistic assumption that
/// `I-X` may only be preceded by `B-X` (Eq. 18 alone, full weight), ignoring
/// the `I-X ⇒ I-X` continuation rule.
pub fn ner_bad_rules() -> SequenceRuleSet {
    let mut set = transition_rules_for(NER_CLASSES, 1.0, 0.0);
    set.name = "ner-bad-rules".into();
    set
}

/// Generic constructor for any number of BIO classes (must be odd:
/// `O` + B/I pairs).
pub fn transition_rules_for(num_classes: usize, weight_b: f32, weight_i: f32) -> SequenceRuleSet {
    assert!(num_classes >= 3 && num_classes % 2 == 1, "BIO class count must be odd and >= 3");
    assert!((0.0..=1.0).contains(&weight_b) && (0.0..=1.0).contains(&weight_i));
    let penalty = Matrix::from_fn(num_classes, num_classes, |prev, cur| {
        if cur == 0 || cur % 2 == 1 {
            // O and B-* carry no constraint
            return 0.0;
        }
        // cur = I-X with X = (cur/2 - 1); its B tag is cur-1, its I tag is cur
        let antecedent = 1.0; // equal(t_i, I-X) holds for this candidate labelling
        let consequent_b = if prev == cur - 1 { 1.0 } else { 0.0 };
        let consequent_i = if prev == cur { 1.0 } else { 0.0 };
        let v_b = soft::implies(antecedent, consequent_b);
        let v_i = soft::implies(antecedent, consequent_i);
        weight_b * (1.0 - v_b) + weight_i * (1.0 - v_i)
    });
    SequenceRuleSet::new("ner-transitions", penalty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_continuations_have_low_penalty() {
        let rules = ner_transition_rules(0.8, 0.2);
        // B-PER (1) -> I-PER (2): only the I⇒I rule is violated
        assert!((rules.penalty_for(1, 2) - 0.2).abs() < 1e-6);
        // I-PER (2) -> I-PER (2): only the I⇒B rule is violated
        assert!((rules.penalty_for(2, 2) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn invalid_continuations_have_full_penalty() {
        let rules = ner_transition_rules(0.8, 0.2);
        // O (0) -> I-PER (2): both rules violated
        assert!((rules.penalty_for(0, 2) - 1.0).abs() < 1e-6);
        // B-LOC (3) -> I-PER (2): both violated
        assert!((rules.penalty_for(3, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_i_targets_are_unconstrained() {
        let rules = ner_transition_rules(0.8, 0.2);
        for prev in 0..NER_CLASSES {
            assert_eq!(rules.penalty_for(prev, 0), 0.0);
            for b in [1, 3, 5, 7] {
                assert_eq!(rules.penalty_for(prev, b), 0.0);
            }
        }
    }

    #[test]
    fn bad_rules_penalise_legitimate_i_to_i() {
        let good = ner_transition_rules(0.8, 0.2);
        let bad = ner_bad_rules();
        // I-ORG (6) -> I-ORG (6) is legitimate; the bad rule set punishes it
        // as hard as an invalid transition.
        assert!(bad.penalty_for(6, 6) > good.penalty_for(6, 6));
        assert!((bad.penalty_for(6, 6) - 1.0).abs() < 1e-6);
        // while B-ORG -> I-ORG stays free under both
        assert_eq!(bad.penalty_for(5, 6), 0.0);
    }

    #[test]
    fn generic_constructor_validates_class_count() {
        let small = transition_rules_for(5, 0.5, 0.5);
        assert_eq!(small.num_classes(), 5);
    }

    #[test]
    #[should_panic]
    fn even_class_count_rejected() {
        let _ = transition_rules_for(4, 0.5, 0.5);
    }
}
