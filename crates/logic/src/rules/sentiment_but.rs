//! The sentiment *A-but-B* contrast rule (Eq. 16/17 of the paper).
//!
//! For a sentence with an "A but B" structure, the sentiment of the whole
//! sentence should agree with the sentiment of clause *B*:
//!
//! ```text
//! positive(sentence S) ⇒ σΘ(clause B)+
//! negative(sentence S) ⇒ σΘ(clause B)−
//! ```
//!
//! Under PSL the rule value for candidate class `k` is simply the
//! classifier's probability of class `k` on clause B, so the projection of
//! Eq. 15 pulls the sentence-level posterior towards the clause-B
//! prediction.  The same struct with the "however" token and/or a smaller
//! weight implements the `our-other-rules` ablation of Table IV.

use crate::rule::{ClassificationRule, ClauseProbs, GroundedRule};

/// Contrast-conjunction rule: the clause after the contrast token determines
/// the sentence sentiment.
#[derive(Debug, Clone)]
pub struct SentimentContrastRule {
    name: String,
    /// Token id of the contrast conjunction ("but" or "however").
    contrast_token: usize,
    /// Rule weight `w_l` (the paper uses 1.0 for the but-rule).
    weight: f32,
}

impl SentimentContrastRule {
    /// Creates the rule for a given contrast token id.
    pub fn new(name: impl Into<String>, contrast_token: usize, weight: f32) -> Self {
        assert!((0.0..=1.0).contains(&weight), "rule weight must be in [0,1]");
        Self { name: name.into(), contrast_token, weight }
    }

    /// The paper's but-rule with weight 1.0.
    pub fn but_rule(but_token: usize) -> Self {
        Self::new("A-but-B", but_token, 1.0)
    }

    /// The ablation's weaker "however" rule.
    pub fn however_rule(however_token: usize) -> Self {
        Self::new("A-however-B", however_token, 1.0)
    }

    /// Token id this rule triggers on.
    pub fn contrast_token(&self) -> usize {
        self.contrast_token
    }

    /// Extracts clause B (the tokens after the **last** occurrence of the
    /// contrast token), or `None` when the token is absent or clause B would
    /// be empty.
    pub fn clause_b<'a>(&self, tokens: &'a [usize]) -> Option<&'a [usize]> {
        let pos = tokens.iter().rposition(|&t| t == self.contrast_token)?;
        let clause = &tokens[pos + 1..];
        (!clause.is_empty()).then_some(clause)
    }
}

impl ClassificationRule for SentimentContrastRule {
    fn name(&self) -> &str {
        &self.name
    }

    fn ground(&self, tokens: &[usize], clause_probs: &ClauseProbs<'_>, num_classes: usize) -> Option<GroundedRule> {
        let clause = self.clause_b(tokens)?;
        let probs = clause_probs(clause);
        assert_eq!(
            probs.len(),
            num_classes,
            "clause probability callback returned {} classes, expected {num_classes}",
            probs.len()
        );
        Some(GroundedRule::new(self.weight, probs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project_distribution;

    const BUT: usize = 99;

    fn clause_probs_stub(probs: Vec<f32>) -> impl Fn(&[usize]) -> Vec<f32> {
        move |_tokens: &[usize]| probs.clone()
    }

    #[test]
    fn does_not_ground_without_contrast_token() {
        let rule = SentimentContrastRule::but_rule(BUT);
        let f = clause_probs_stub(vec![0.5, 0.5]);
        assert!(rule.ground(&[1, 2, 3], &f, 2).is_none());
    }

    #[test]
    fn does_not_ground_when_clause_b_empty() {
        let rule = SentimentContrastRule::but_rule(BUT);
        let f = clause_probs_stub(vec![0.5, 0.5]);
        assert!(rule.ground(&[1, 2, BUT], &f, 2).is_none());
    }

    #[test]
    fn clause_b_uses_last_contrast_occurrence() {
        let rule = SentimentContrastRule::but_rule(BUT);
        assert_eq!(rule.clause_b(&[1, BUT, 2, BUT, 3, 4]), Some(&[3usize, 4][..]));
    }

    #[test]
    fn grounding_returns_clause_probabilities_as_values() {
        let rule = SentimentContrastRule::but_rule(BUT);
        let f = clause_probs_stub(vec![0.2, 0.8]);
        let g = rule.ground(&[1, BUT, 2, 3], &f, 2).unwrap();
        assert_eq!(g.weight, 1.0);
        assert_eq!(g.values, vec![0.2, 0.8]);
    }

    #[test]
    fn projection_moves_posterior_towards_clause_b_sentiment() {
        // q_a thinks the sentence is negative, but clause B is clearly
        // positive: after projection the positive class should gain mass.
        let rule = SentimentContrastRule::but_rule(BUT);
        let f = clause_probs_stub(vec![0.1, 0.9]);
        let g = rule.ground(&[5, BUT, 7], &f, 2).unwrap();
        let qa = vec![0.6, 0.4];
        let qb = project_distribution(&qa, &g.penalties(), 5.0);
        assert!(qb[1] > qa[1], "positive mass should increase: {qb:?}");
        assert!(qb[1] > 0.9);
    }

    #[test]
    fn weaker_weight_moves_less() {
        let strong = SentimentContrastRule::new("strong", BUT, 1.0);
        let weak = SentimentContrastRule::new("weak", BUT, 0.3);
        let f = clause_probs_stub(vec![0.05, 0.95]);
        let qa = vec![0.7, 0.3];
        let qs = project_distribution(&qa, &strong.ground(&[1, BUT, 2], &f, 2).unwrap().penalties(), 5.0);
        let qw = project_distribution(&qa, &weak.ground(&[1, BUT, 2], &f, 2).unwrap().penalties(), 5.0);
        assert!(qs[1] > qw[1]);
    }
}
