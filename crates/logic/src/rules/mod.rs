//! Concrete rule instantiations used in the paper's evaluation.

pub mod ner_transition;
pub mod sentiment_but;

pub use ner_transition::{ner_bad_rules, ner_transition_rules};
pub use sentiment_but::SentimentContrastRule;
