//! Sequence version of the posterior-regularisation projection.
//!
//! For sequence labelling the rule-regularised distribution
//! `q_b(t_1..t_T) ∝ Π_t q_a(t_t) · Π_t exp{−C · penalty(t_{t−1}, t_t)}`
//! is a chain-structured Markov random field: unary potentials are the
//! per-token posteriors `q_a`, pairwise potentials encode the transition
//! rules (Eq. 18/19).  The per-token marginals of `q_b` — which is what the
//! pseudo-M-step trains against — are computed exactly with the
//! forward–backward algorithm, as the paper notes ("we can use dynamic
//! programming for efficient computation in Equation 15").

use crate::rule::SequenceRuleSet;
use lncl_tensor::{stats, Matrix};

/// Projects per-token posteriors `qa` (one distribution per token) onto the
/// subspace regularised by the transition `rules`, returning the per-token
/// marginals of `q_b`.
///
/// Generic over the per-token storage so callers can pass `&[Vec<f32>]` or
/// a vector of matrix-row slices without copying.
pub fn project_sequence<S: AsRef<[f32]>>(qa: &[S], rules: &SequenceRuleSet, regularization: f32) -> Vec<Vec<f32>> {
    if qa.is_empty() {
        return Vec::new();
    }
    let k = qa[0].as_ref().len();
    assert_eq!(rules.num_classes(), k, "rule set covers {} classes, posteriors have {k}", rules.num_classes());
    assert!(regularization >= 0.0, "regularization strength must be non-negative");
    if qa.len() == 1 || regularization == 0.0 {
        // no pairwise terms: q_b == q_a (renormalised)
        return qa.iter().map(|p| stats::normalized(p.as_ref())).collect();
    }

    let t_len = qa.len();
    // log unary and pairwise potentials
    let log_unary: Vec<Vec<f32>> = qa.iter().map(|p| p.as_ref().iter().map(|&v| v.max(1e-12).ln()).collect()).collect();
    let log_pair = Matrix::from_fn(k, k, |prev, cur| -regularization * rules.penalty_for(prev, cur));

    // forward
    let mut alpha = vec![vec![0.0f32; k]; t_len];
    alpha[0].clone_from(&log_unary[0]);
    for t in 1..t_len {
        for cur in 0..k {
            let scores: Vec<f32> = (0..k).map(|prev| alpha[t - 1][prev] + log_pair[(prev, cur)]).collect();
            alpha[t][cur] = stats::log_sum_exp(&scores) + log_unary[t][cur];
        }
    }
    // backward
    let mut beta = vec![vec![0.0f32; k]; t_len];
    for t in (0..t_len - 1).rev() {
        for prev in 0..k {
            let scores: Vec<f32> =
                (0..k).map(|cur| log_pair[(prev, cur)] + log_unary[t + 1][cur] + beta[t + 1][cur]).collect();
            beta[t][prev] = stats::log_sum_exp(&scores);
        }
    }
    // marginals
    (0..t_len)
        .map(|t| {
            let joint: Vec<f32> = (0..k).map(|m| alpha[t][m] + beta[t][m]).collect();
            stats::softmax(&joint)
        })
        .collect()
}

/// Brute-force reference: enumerates all `K^T` label sequences and computes
/// the exact marginals of `q_b`.  Only feasible for tiny inputs; used to
/// validate [`project_sequence`] in tests.
pub fn project_sequence_bruteforce(qa: &[Vec<f32>], rules: &SequenceRuleSet, regularization: f32) -> Vec<Vec<f32>> {
    let t_len = qa.len();
    if t_len == 0 {
        return Vec::new();
    }
    let k = qa[0].len();
    let mut marginals = vec![vec![0.0f32; k]; t_len];
    let total_sequences = k.pow(t_len as u32);
    let mut normaliser = 0.0f64;
    let mut weights = Vec::with_capacity(total_sequences);
    for code in 0..total_sequences {
        // decode the label sequence
        let mut labels = Vec::with_capacity(t_len);
        let mut rest = code;
        for _ in 0..t_len {
            labels.push(rest % k);
            rest /= k;
        }
        let mut log_w = 0.0f32;
        for (t, &l) in labels.iter().enumerate() {
            log_w += qa[t][l].max(1e-12).ln();
            if t > 0 {
                log_w -= regularization * rules.penalty_for(labels[t - 1], l);
            }
        }
        let w = log_w.exp() as f64;
        normaliser += w;
        weights.push((labels, w));
    }
    for (labels, w) in weights {
        for (t, &l) in labels.iter().enumerate() {
            marginals[t][l] += (w / normaliser) as f32;
        }
    }
    marginals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ner_transition::ner_transition_rules;

    fn toy_rules() -> SequenceRuleSet {
        // class 1 must not follow class 0 (penalty 1), everything else free.
        let mut penalty = Matrix::zeros(3, 3);
        penalty[(0, 1)] = 1.0;
        SequenceRuleSet::new("toy", penalty)
    }

    #[test]
    fn empty_and_single_token_sequences() {
        let rules = toy_rules();
        assert!(project_sequence::<Vec<f32>>(&[], &rules, 5.0).is_empty());
        let single = project_sequence(&[vec![0.2, 0.3, 0.5]], &rules, 5.0);
        assert_eq!(single.len(), 1);
        assert!((single[0][2] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn zero_regularisation_returns_qa() {
        let qa = vec![vec![0.7, 0.2, 0.1], vec![0.1, 0.8, 0.1]];
        let out = project_sequence(&qa, &toy_rules(), 0.0);
        for (o, q) in out.iter().zip(&qa) {
            for (a, b) in o.iter().zip(q) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn forbidden_transition_is_suppressed() {
        // token 0 is almost surely class 0; token 1 slightly prefers class 1,
        // but the 0 -> 1 transition is penalised, so mass should move away.
        let qa = vec![vec![0.95, 0.04, 0.01], vec![0.30, 0.45, 0.25]];
        let out = project_sequence(&qa, &toy_rules(), 5.0);
        assert!(out[1][1] < 0.15, "penalised class should lose mass: {:?}", out[1]);
        assert!((out[1][0] + out[1][2]) > 0.85);
    }

    #[test]
    fn matches_bruteforce_on_small_chains() {
        let qa = vec![vec![0.5, 0.3, 0.2], vec![0.2, 0.5, 0.3], vec![0.1, 0.2, 0.7], vec![0.4, 0.4, 0.2]];
        let rules = toy_rules();
        for c in [0.5f32, 2.0, 5.0] {
            let dp = project_sequence(&qa, &rules, c);
            let brute = project_sequence_bruteforce(&qa, &rules, c);
            for (d, b) in dp.iter().zip(&brute) {
                for (x, y) in d.iter().zip(b) {
                    assert!((x - y).abs() < 1e-4, "C={c}: dp {dp:?} vs brute {brute:?}");
                }
            }
        }
    }

    #[test]
    fn marginals_are_distributions() {
        let qa = vec![vec![0.6, 0.3, 0.1]; 6];
        let out = project_sequence(&qa, &toy_rules(), 3.0);
        for p in out {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ner_rules_clean_invalid_bio_sequences() {
        // 9-class BIO. qa says token 1 is I-PER (class 2) but token 0 is O —
        // the transition rules should push token 1 away from the orphan I-PER.
        let rules = ner_transition_rules(0.8, 0.2);
        let mut qa = vec![vec![0.0f32; 9], vec![0.0f32; 9]];
        qa[0][0] = 0.9;
        // the remaining 0.1 mass spread evenly over the 8 entity classes
        for q in qa[0].iter_mut().skip(1) {
            *q = 0.1 / 8.0;
        }
        qa[1][2] = 0.55; // orphan I-PER
        qa[1][0] = 0.35;
        for c in [1, 3, 4, 5, 6, 7, 8] {
            qa[1][c] = 0.10 / 7.0;
        }
        let out = project_sequence(&qa, &rules, 5.0);
        assert!(out[1][2] < qa[1][2], "orphan I-PER should be discouraged: {:?}", out[1]);
        assert!(out[1][0] > qa[1][0], "O should gain mass: {:?}", out[1]);
    }
}
