//! Soft truth values and the Łukasiewicz relaxations of the logical
//! connectives used by probabilistic soft logic (Eq. 4 of the paper).

/// Clamps a value into the soft-truth interval `[0, 1]`.
#[inline]
pub fn clamp_truth(x: f32) -> f32 {
    x.clamp(0.0, 1.0)
}

/// Łukasiewicz conjunction: `I(a ∧ b) = max(0, I(a) + I(b) − 1)`.
#[inline]
pub fn and(a: f32, b: f32) -> f32 {
    clamp_truth(a + b - 1.0)
}

/// Łukasiewicz disjunction: `I(a ∨ b) = min(1, I(a) + I(b))`.
#[inline]
pub fn or(a: f32, b: f32) -> f32 {
    clamp_truth(a + b)
}

/// Łukasiewicz negation: `I(¬a) = 1 − I(a)`.
#[inline]
pub fn not(a: f32) -> f32 {
    clamp_truth(1.0 - a)
}

/// Łukasiewicz implication: `I(a ⇒ b) = min(1, 1 − I(a) + I(b))`.
///
/// The *distance to satisfaction* of a rule `a ⇒ b` is `1 − I(a ⇒ b)`, and
/// the rule value `v_l` used in Eq. 15 is exactly `I(a ⇒ b)`.
#[inline]
pub fn implies(a: f32, b: f32) -> f32 {
    clamp_truth(1.0 - a + b)
}

/// Conjunction over many atoms.
pub fn and_all(values: &[f32]) -> f32 {
    clamp_truth(values.iter().sum::<f32>() - (values.len() as f32 - 1.0))
}

/// Disjunction over many atoms.
pub fn or_all(values: &[f32]) -> f32 {
    clamp_truth(values.iter().sum::<f32>())
}

/// Distance to satisfaction of an implication (`d_l` in PSL): how far the
/// grounded rule is from being satisfied.
#[inline]
pub fn distance_to_satisfaction(antecedent: f32, consequent: f32) -> f32 {
    1.0 - implies(antecedent, consequent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_voting() {
        // I(friend ∧ votesFor) with I(friend)=1, I(votesFor)=0.9 → 0.9
        assert!((and(1.0, 0.9) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn boolean_limits_match_classical_logic() {
        for a in [0.0f32, 1.0] {
            for b in [0.0f32, 1.0] {
                assert_eq!(and(a, b), if a == 1.0 && b == 1.0 { 1.0 } else { 0.0 });
                assert_eq!(or(a, b), if a == 1.0 || b == 1.0 { 1.0 } else { 0.0 });
                assert_eq!(implies(a, b), if a == 1.0 && b == 0.0 { 0.0 } else { 1.0 });
            }
            assert_eq!(not(a), 1.0 - a);
        }
    }

    #[test]
    fn implication_is_satisfied_when_antecedent_false() {
        assert_eq!(implies(0.0, 0.3), 1.0);
        assert_eq!(distance_to_satisfaction(0.0, 0.3), 0.0);
    }

    #[test]
    fn n_ary_operators_match_binary_composition() {
        let vals = [0.9f32, 0.8, 0.7];
        assert!((and_all(&vals) - and(and(0.9, 0.8), 0.7)).abs() < 1e-6);
        assert!((or_all(&[0.2, 0.3]) - or(0.2, 0.3)).abs() < 1e-6);
    }

    /// Deterministic stand-in for the former proptest sweep: a dense grid
    /// over the unit square.
    fn unit_grid() -> impl Iterator<Item = (f32, f32)> {
        (0..=20).flat_map(|i| (0..=20).map(move |j| (i as f32 / 20.0, j as f32 / 20.0)))
    }

    #[test]
    fn operators_stay_in_unit_interval() {
        for (a, b) in unit_grid() {
            for v in [and(a, b), or(a, b), not(a), implies(a, b)] {
                assert!((0.0..=1.0).contains(&v), "operator left unit interval at ({a}, {b})");
            }
        }
    }

    #[test]
    fn de_morgan_duality() {
        // ¬(a ∧ b) == ¬a ∨ ¬b under the Łukasiewicz relaxation
        for (a, b) in unit_grid() {
            let lhs = not(and(a, b));
            let rhs = or(not(a), not(b));
            assert!((lhs - rhs).abs() < 1e-5, "De Morgan violated at ({a}, {b})");
        }
    }

    #[test]
    fn implication_equals_not_a_or_b() {
        for (a, b) in unit_grid() {
            assert!((implies(a, b) - or(not(a), b)).abs() < 1e-5, "implication mismatch at ({a}, {b})");
        }
    }

    #[test]
    fn conjunction_commutes() {
        for (a, b) in unit_grid() {
            assert!((and(a, b) - and(b, a)).abs() < 1e-6);
            assert!((or(a, b) - or(b, a)).abs() < 1e-6);
        }
    }
}
