//! Workspace-level umbrella crate: re-exports the public crates so the
//! examples and integration tests in this repository have a single import
//! surface.
//!
//! The primary entry point for running any of the paper's compared methods
//! is the unified method API in [`logic_lncl::method`]: construct a
//! [`MethodRegistry`](logic_lncl::MethodRegistry), look methods up by key
//! (`"dawid-skene"`, `"logic-lncl"`, …) and run them through the
//! [`CrowdMethod`](logic_lncl::CrowdMethod) trait with a
//! [`RunContext`](logic_lncl::RunContext).
//!
//! `ARCHITECTURE.md` at the repository root maps the eight crates, the
//! registry flow, the bench/sweep/rank pipeline and the streaming
//! serving layer (`lncl-serve`, not re-exported here — it is a service
//! frontend, not a library surface).
pub use lncl_autograd as autograd;
pub use lncl_crowd as crowd;
pub use lncl_logic as logic;
pub use lncl_nn as nn;
pub use lncl_tensor as tensor;
pub use logic_lncl as lncl;
