//! Workspace-level umbrella crate: re-exports the public crates so the
//! examples and integration tests in this repository have a single import
//! surface.
pub use lncl_autograd as autograd;
pub use lncl_crowd as crowd;
pub use lncl_logic as logic;
pub use lncl_nn as nn;
pub use lncl_tensor as tensor;
pub use logic_lncl as lncl;
