#!/usr/bin/env bash
# End-to-end smoke test of the streaming truth-inference service: start
# the `serve` binary, replay the fixture label stream, finalize, and
# compare every consensus and annotator document against the checked-in
# golden fixture (scripts/fixtures/serve_smoke_golden.json).
#
# The flow is fully deterministic — fixed labels, serial ingestion (so id
# interning is reproducible), one finalization pass — so the comparison is
# an exact byte diff.
#
#   LNCL_SERVE_PORT   port to bind (default 47113)
#   UPDATE_GOLDEN=1   regenerate the golden fixture instead of diffing

set -euo pipefail

PORT="${LNCL_SERVE_PORT:-47113}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIXTURES="$ROOT/scripts/fixtures"
BASE="http://127.0.0.1:$PORT"

cargo build --release -p lncl-serve --bin serve

LNCL_SERVE_PORT="$PORT" "$ROOT/target/release/serve" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "serve_smoke: server did not come up on port $PORT" >&2; exit 1; }

curl -sf -X POST --data-binary @"$FIXTURES/serve_smoke_labels.json" "$BASE/labels" >/dev/null
curl -sf -X POST -d '' "$BASE/finalize" >/dev/null

ACTUAL="$(mktemp)"
for id in i0 i1 i2 i3; do
    curl -sf "$BASE/consensus/$id"
done > "$ACTUAL"
for id in alice bob carol; do
    curl -sf "$BASE/annotators/$id"
done >> "$ACTUAL"
curl -sf "$BASE/stats" >> "$ACTUAL"

if [ "${UPDATE_GOLDEN:-0}" = "1" ]; then
    cp "$ACTUAL" "$FIXTURES/serve_smoke_golden.json"
    echo "serve_smoke: golden fixture updated"
    exit 0
fi

diff -u "$FIXTURES/serve_smoke_golden.json" "$ACTUAL"
echo "serve_smoke: OK"

# ---- closed-loop routing round -------------------------------------------
# A second server with a routing policy and a finite label budget: seed a
# few labels, then follow /assign plans — answering every planned
# assignment with a label — until /assign reports budget exhaustion, and
# check the accounting and the consensus afterwards.  Deterministic for
# the fixed seed, so the loop always spends the budget exactly.

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

ROUTE_PORT=$((PORT + 1))
RBASE="http://127.0.0.1:$ROUTE_PORT"
LNCL_SERVE_PORT="$ROUTE_PORT" LNCL_SERVE_POLICY=quarantine \
    LNCL_SERVE_BUDGET=12 LNCL_SERVE_SEED=3 "$ROOT/target/release/serve" &
SERVER_PID=$!

for _ in $(seq 1 50); do
    if curl -sf "$RBASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -sf "$RBASE/healthz" >/dev/null || { echo "serve_smoke: routed server did not come up on port $ROUTE_PORT" >&2; exit 1; }

# seed: 4 of the 12 budgeted labels introduce 4 instances and 3
# annotators, leaving exactly 8 open (instance, annotator) pairs
curl -sf -X POST -d '{"labels": [
    {"instance": "i0", "annotator": "a0", "class": 1},
    {"instance": "i1", "annotator": "a0", "class": 0},
    {"instance": "i2", "annotator": "a1", "class": 0},
    {"instance": "i3", "annotator": "a2", "class": 1}
  ]}' "$RBASE/labels" >/dev/null

ANSWERED=0
BODY="$(mktemp)"
while :; do
    STATUS="$(curl -s -o "$BODY" -w '%{http_code}' -X POST -d '{"limit": 3}' "$RBASE/assign")"
    if [ "$STATUS" = "409" ]; then
        break
    fi
    [ "$STATUS" = "200" ] || { echo "serve_smoke: /assign answered $STATUS: $(cat "$BODY")" >&2; exit 1; }
    # the response is pretty-printed, one field per line: pair up the
    # instance and annotator columns positionally
    PAIRS="$(paste -d ' ' \
        <(grep -o '"instance": "[^"]*"' "$BODY" | cut -d'"' -f4) \
        <(grep -o '"annotator": "[^"]*"' "$BODY" | cut -d'"' -f4))"
    if [ -z "$PAIRS" ]; then
        break
    fi
    while read -r INSTANCE ANNOTATOR; do
        curl -sf -X POST \
            -d "{\"instance\": \"$INSTANCE\", \"annotator\": \"$ANNOTATOR\", \"class\": 1}" \
            "$RBASE/labels" >/dev/null
        ANSWERED=$((ANSWERED + 1))
    done <<EOF
$PAIRS
EOF
done
[ "$ANSWERED" -eq 8 ] || { echo "serve_smoke: closed loop answered $ANSWERED labels, expected 8" >&2; exit 1; }

curl -sf "$RBASE/budget" | grep -q '"exhausted": true' \
    || { echo "serve_smoke: /budget should report exhaustion" >&2; exit 1; }
curl -sf "$RBASE/consensus/i0" | grep -q '"hard_class": 1' \
    || { echo "serve_smoke: unexpected consensus after the routed round" >&2; exit 1; }
echo "serve_smoke: closed-loop OK"
