#!/usr/bin/env bash
# End-to-end smoke test of the streaming truth-inference service: start
# the `serve` binary, replay the fixture label stream, finalize, and
# compare every consensus and annotator document against the checked-in
# golden fixture (scripts/fixtures/serve_smoke_golden.json).
#
# The flow is fully deterministic — fixed labels, serial ingestion (so id
# interning is reproducible), one finalization pass — so the comparison is
# an exact byte diff.
#
#   LNCL_SERVE_PORT   port to bind (default 47113)
#   UPDATE_GOLDEN=1   regenerate the golden fixture instead of diffing

set -euo pipefail

PORT="${LNCL_SERVE_PORT:-47113}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIXTURES="$ROOT/scripts/fixtures"
BASE="http://127.0.0.1:$PORT"

cargo build --release -p lncl-serve --bin serve

LNCL_SERVE_PORT="$PORT" "$ROOT/target/release/serve" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "serve_smoke: server did not come up on port $PORT" >&2; exit 1; }

curl -sf -X POST --data-binary @"$FIXTURES/serve_smoke_labels.json" "$BASE/labels" >/dev/null
curl -sf -X POST -d '' "$BASE/finalize" >/dev/null

ACTUAL="$(mktemp)"
for id in i0 i1 i2 i3; do
    curl -sf "$BASE/consensus/$id"
done > "$ACTUAL"
for id in alice bob carol; do
    curl -sf "$BASE/annotators/$id"
done >> "$ACTUAL"
curl -sf "$BASE/stats" >> "$ACTUAL"

if [ "${UPDATE_GOLDEN:-0}" = "1" ]; then
    cp "$ACTUAL" "$FIXTURES/serve_smoke_golden.json"
    echo "serve_smoke: golden fixture updated"
    exit 0
fi

diff -u "$FIXTURES/serve_smoke_golden.json" "$ACTUAL"
echo "serve_smoke: OK"
