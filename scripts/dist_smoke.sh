#!/usr/bin/env bash
# End-to-end smoke test of the distributed sweep orchestrator: run the
# scenario sweep serially (the golden), then run the same sweep through a
# coordinator and two workers over loopback TCP — killing one worker
# mid-sweep — and require the merged quality-only report to be **bitwise
# identical** to the serial one (`cmp`, not a semantic diff).
#
# The contract under test is the one the orchestrator is built around:
# every method run is seed-deterministic, so scale, epochs and the method
# filter travel in the coordinator's Spec message and the merged report
# cannot depend on worker count, scheduling, crashes or interleaving.
#
#   LNCL_COORD_PORT   coordinator port (default 47213)
#   DIST_SMOKE_OUT    directory to copy the reports into (optional; for
#                     CI artifact upload)

set -euo pipefail

PORT="${LNCL_COORD_PORT:-47213}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ADDR="127.0.0.1:$PORT"

cargo build --release -p lncl-bench --bin scenario_sweep
cargo build --release -p lncl-serve --bin sweep_coord --bin sweep_worker

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT
mkdir -p "$WORK/serial" "$WORK/dist"

# the sweep parameters are shared by both runs; the workers deliberately
# ignore them (they take scale / epochs / methods from the Spec message),
# so only the serial sweep and the coordinator read these
export LNCL_SCALE=tiny
export LNCL_EPOCHS=3
export LNCL_SWEEP_QUALITY_ONLY=1
export LNCL_SWEEP_METHODS="mv,dawid-skene,glad,ibcc,pm,catd,ds-windowed"

echo "dist_smoke: serial golden sweep"
LNCL_BENCH_DIR="$WORK/serial" "$ROOT/target/release/scenario_sweep"

echo "dist_smoke: distributed sweep (1 coordinator + 2 workers, one killed mid-sweep)"
LNCL_COORD_ADDR="$ADDR" LNCL_LEASE_MS=2000 LNCL_BENCH_DIR="$WORK/dist" \
    "$ROOT/target/release/sweep_coord" &
COORD_PID=$!
PIDS+=("$COORD_PID")

LNCL_COORD_ADDR="$ADDR" LNCL_WORKER_NAME=doomed "$ROOT/target/release/sweep_worker" &
W1=$!
PIDS+=("$W1")
LNCL_COORD_ADDR="$ADDR" LNCL_WORKER_NAME=survivor "$ROOT/target/release/sweep_worker" &
W2=$!
PIDS+=("$W2")

# kill one worker while the sweep is in flight; its leased unit expires
# and is re-issued to the survivor.  If the sweep already finished (a very
# fast machine), the kill is a no-op and the run degrades to the clean
# two-worker case — the bitwise check is unaffected either way.
sleep 1
if kill "$W1" 2>/dev/null; then
    echo "dist_smoke: killed worker 'doomed' mid-sweep"
else
    echo "dist_smoke: worker 'doomed' already finished (no mid-sweep kill on this machine)"
fi

wait "$COORD_PID"
wait "$W2" || { echo "dist_smoke: the surviving worker failed" >&2; exit 1; }
wait "$W1" 2>/dev/null || true

cmp "$WORK/serial/BENCH_scenario_sweep.json" "$WORK/dist/BENCH_scenario_sweep.json" \
    || { echo "dist_smoke: merged report diverged from the serial golden" >&2; exit 1; }
echo "dist_smoke: OK — merged distributed report is bitwise identical to the serial sweep"

if [ -n "${DIST_SMOKE_OUT:-}" ]; then
    mkdir -p "$DIST_SMOKE_OUT"
    cp "$WORK/serial/BENCH_scenario_sweep.json" "$DIST_SMOKE_OUT/dist_smoke_serial.json"
    cp "$WORK/dist/BENCH_scenario_sweep.json" "$DIST_SMOKE_OUT/dist_smoke_merged.json"
    echo "dist_smoke: reports copied to $DIST_SMOKE_OUT"
fi
