//! Integration tests of the truth-inference baselines on the synthetic
//! corpora: orderings that the paper's tables rely on.

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_crowd::metrics::span_f1;
use lncl_crowd::truth::*;

#[test]
fn model_based_methods_beat_mv_on_sentiment() {
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 700,
        num_annotators: 40,
        spammer_fraction: 0.35,
        ..SentimentDatasetConfig::default()
    });
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view).accuracy(&view.gold);
    let ds = DawidSkene::default().infer(&view).accuracy(&view.gold);
    let glad = Glad::default().infer(&view).accuracy(&view.gold);
    let ibcc = Ibcc::default().infer(&view).accuracy(&view.gold);
    assert!(ds > mv, "DS {ds} should beat MV {mv}");
    assert!(glad >= mv - 0.005, "GLAD {glad} should not lose to MV {mv}");
    assert!(ibcc > mv, "IBCC {ibcc} should beat MV {mv}");
}

#[test]
fn sequence_aware_methods_beat_mv_on_ner_spans() {
    let dataset = generate_ner(&NerDatasetConfig {
        train_size: 250,
        num_annotators: 20,
        min_labels_per_instance: 2,
        max_labels_per_instance: 4,
        ..NerDatasetConfig::default()
    });
    let view = dataset.annotation_view();
    let gold: Vec<Vec<usize>> = dataset.train.iter().map(|i| i.gold.clone()).collect();
    let f1 = |est: &TruthEstimate| span_f1(&est.hard_by_instance(&view), &gold).f1;
    let mv = f1(&MajorityVote.infer(&view));
    let hmm = f1(&HmmCrowd::default().infer(&view));
    let bsc = f1(&BscSeq::default().infer(&view));
    assert!(hmm > mv, "HMM-Crowd {hmm} should beat MV {mv}");
    assert!(bsc > mv, "BSC-seq {bsc} should beat MV {mv}");
}

#[test]
fn all_methods_produce_valid_posteriors() {
    let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    let view = dataset.annotation_view();
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(MajorityVote),
        Box::new(DawidSkene::default()),
        Box::new(Glad::default()),
        Box::new(Ibcc::default()),
        Box::new(Pm::default()),
        Box::new(Catd::default()),
    ];
    for method in &methods {
        let estimate = method.infer(&view);
        assert_eq!(estimate.posteriors.len(), view.num_units(), "{}", method.name());
        for p in &estimate.posteriors {
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-3, "{} posterior not normalised", method.name());
        }
        let accuracy = estimate.accuracy(&view.gold);
        assert!(accuracy > 0.6, "{} accuracy {accuracy} suspiciously low", method.name());
    }
}
