//! Integration tests of the unified `CrowdMethod` API: registry round-trip
//! (every descriptor resolves, keys are unique, families partition) and a
//! trait-object smoke test running each truth-inference method end-to-end.

use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::TaskKind;
use logic_lncl::method::{Family, MethodRegistry, RunContext};
use logic_lncl::TrainConfig;
use std::collections::BTreeSet;

#[test]
fn registry_round_trip_resolves_every_descriptor() {
    let registry = MethodRegistry::standard();
    assert!(registry.len() >= 15, "expected >= 15 compared methods, got {}", registry.len());

    let mut seen = BTreeSet::new();
    for method in registry.iter() {
        let descriptor = method.descriptor();
        // every descriptor name resolves back to a method with the same descriptor
        let resolved = registry
            .get(&descriptor.name)
            .unwrap_or_else(|| panic!("descriptor name {:?} does not resolve", descriptor.name));
        assert_eq!(resolved.descriptor().name, descriptor.name);
        assert_eq!(resolved.descriptor().label, descriptor.label);
        assert_eq!(resolved.descriptor().family, descriptor.family);
        // no duplicates
        assert!(seen.insert(descriptor.name.clone()), "duplicate registry key {:?}", descriptor.name);
    }
    assert_eq!(seen.len(), registry.len());
}

#[test]
fn families_partition_the_registry() {
    let registry = MethodRegistry::standard();
    let by_family: usize = Family::all().iter().map(|&f| registry.family(f).len()).sum();
    assert_eq!(by_family, registry.len(), "every method must belong to exactly one family");
    // the blocks the paper's tables rely on are all populated (the 8
    // paper baselines plus the stream-windowed DS variant)
    assert_eq!(registry.family(Family::TruthInference).len(), 9);
    assert!(registry.family(Family::TwoStage).len() >= 2);
    assert!(registry.family(Family::CrowdLayer).len() >= 3);
    assert!(!registry.family(Family::LogicLncl).is_empty());
    assert!(!registry.family(Family::Gold).is_empty());
    assert!(registry.family(Family::Ablation).len() >= 5);
}

#[test]
fn unknown_keys_do_not_resolve() {
    let registry = MethodRegistry::standard();
    assert!(registry.get("no-such-method").is_none());
    let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    let ctx = RunContext::for_dataset(&dataset, TrainConfig::fast(1));
    assert!(registry.run("no-such-method", &dataset, &ctx).is_none());
}

#[test]
fn truth_inference_methods_run_through_the_trait_object() {
    let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    let ctx = RunContext::for_dataset(&dataset, TrainConfig::fast(1));
    let registry = MethodRegistry::standard();
    let mut ran = 0usize;
    for method in registry.family(Family::TruthInference) {
        let descriptor = method.descriptor();
        if !descriptor.supports(TaskKind::Classification) {
            continue;
        }
        let rows = method.run(&dataset, &ctx);
        assert_eq!(rows.len(), 1, "{}: truth-inference methods contribute one row", descriptor.name);
        let inference = rows[0].inference.expect("truth-inference methods report inference metrics");
        assert!(
            inference.accuracy > 0.6,
            "{}: inference accuracy {} suspiciously low",
            descriptor.name,
            inference.accuracy
        );
        ran += 1;
    }
    assert_eq!(ran, 7, "MV, DS, DS-W, GLAD, IBCC, PM and CATD all support classification");
}
