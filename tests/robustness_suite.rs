//! Cross-method robustness & property-test harness.
//!
//! Metamorphic / invariant properties checked for **every**
//! `MethodRegistry::standard()` descriptor, on scenario-generated datasets
//! for both tasks:
//!
//! * **Posterior normalisation** — every method exposing a truth posterior
//!   (`CrowdMethod::infer_posteriors`) returns one `K`-row per unit, entries
//!   in `[0, 1]`, rows summing to 1.
//! * **Annotator-ID permutation invariance** — renumbering annotators (the
//!   per-instance label order kept) leaves every method's metrics
//!   bit-for-bit unchanged: no method may key behaviour on annotator ids.
//! * **Class-relabeling equivariance** — permuting class identities
//!   everywhere leaves aggregation quality unchanged (exact up to argmax
//!   ties for aggregation-only methods, bounded drift for neural methods
//!   whose random initialisation is not class-symmetric).
//! * **Bitwise seed determinism** — running any method twice under the same
//!   `RunContext` seed reproduces identical metrics (the PR-2
//!   "ascending-k" reproducibility contract, end to end).
//! * **Redundancy monotonicity & spammer dilution** — MV/DS accuracy grows
//!   with redundancy on clean pools; Dawid–Skene degrades gracefully when a
//!   third of the pool are uniform spammers.
//!
//! Datasets are deliberately tiny (the suite trains every neural method
//! several times); the properties hold at any scale.

use lncl_crowd::scenario::{generate_scenario, Archetype, PropensityProfile, ScenarioConfig};
use lncl_crowd::{CrowdDataset, TaskKind};
use logic_lncl::method::{Family, MethodRegistry, RunContext};
use logic_lncl::{EvalMetrics, MethodResult, TrainConfig};
use std::sync::OnceLock;

const SEED: u64 = 9;

/// The tiny mixed-pool dataset each full-registry pass runs on.  A pinch of
/// every archetype so the properties are checked under heterogeneous noise,
/// uniform propensity and fixed redundancy 3 (odd, so binary majority votes
/// cannot tie and argmax order cannot leak into the relabeling check).
/// With 6 annotators the fractions round to 2 reliable / 1 spammer /
/// 1 pair-confuser / 2 colluders — the colluding share must map to at
/// least two members (a leader *and* a follower), or no duplicated stream
/// ever reaches the methods under test.
fn property_config(task: TaskKind) -> ScenarioConfig {
    let mix = vec![
        (Archetype::Reliable { accuracy: 0.85 }, 0.34),
        (Archetype::Spammer, 0.16),
        (Archetype::pair_confuser(), 0.16),
        (Archetype::Colluding, 0.34),
    ];
    let base = match task {
        TaskKind::Classification => ScenarioConfig::classification("props-sent").with_sizes(60, 16, 16),
        TaskKind::SequenceTagging => ScenarioConfig::tagging("props-ner").with_sizes(48, 12, 12),
    };
    base.with_annotators(6)
        .with_redundancy(3, 3)
        .with_mix(mix)
        .with_propensity(PropensityProfile::Uniform)
        .with_seed(SEED)
}

fn dataset_of(task: TaskKind) -> CrowdDataset {
    generate_scenario(&property_config(task))
}

fn context_of(dataset: &CrowdDataset) -> RunContext {
    RunContext::for_dataset(dataset, TrainConfig::fast(1).with_seed(SEED))
}

/// Baseline rows of every supporting registry method, computed once per
/// task and shared across the properties (each full pass trains ~17 neural
/// methods, so recomputing per test would dominate the suite's runtime).
fn baseline_rows(task: TaskKind) -> &'static Vec<(String, Vec<MethodResult>)> {
    static SENT: OnceLock<Vec<(String, Vec<MethodResult>)>> = OnceLock::new();
    static NER: OnceLock<Vec<(String, Vec<MethodResult>)>> = OnceLock::new();
    let cell = match task {
        TaskKind::Classification => &SENT,
        TaskKind::SequenceTagging => &NER,
    };
    cell.get_or_init(|| {
        let dataset = dataset_of(task);
        let ctx = context_of(&dataset);
        run_all(&MethodRegistry::standard(), &dataset, &ctx)
    })
}

/// Runs every method supporting the dataset's task, keyed by registry name.
fn run_all(registry: &MethodRegistry, dataset: &CrowdDataset, ctx: &RunContext) -> Vec<(String, Vec<MethodResult>)> {
    registry
        .supporting(dataset.task)
        .iter()
        .map(|method| (method.descriptor().name, method.run(dataset, ctx)))
        .collect()
}

fn metric_bits(m: &EvalMetrics) -> [u32; 4] {
    [m.accuracy.to_bits(), m.precision.to_bits(), m.recall.to_bits(), m.f1.to_bits()]
}

/// Flattens result rows into `(row label, metric bits)` for bitwise
/// comparison.
fn row_bits(rows: &[MethodResult]) -> Vec<(String, Vec<u32>)> {
    rows.iter()
        .map(|r| {
            let mut bits: Vec<u32> = metric_bits(&r.prediction).to_vec();
            match &r.inference {
                Some(m) => bits.extend(metric_bits(m)),
                None => bits.push(u32::MAX),
            }
            (r.method.clone(), bits)
        })
        .collect()
}

/// Maximum absolute metric drift between two row sets.  `all_metrics`
/// compares accuracy *and* the span P/R/F1 columns; with it off only the
/// (token) accuracy columns are compared — at the suite's micro scale a
/// one-epoch tagger predicts a handful of spans, making span P/R/F1 pure
/// noise while token accuracy stays stable.
fn max_metric_delta(a: &[MethodResult], b: &[MethodResult], all_metrics: bool) -> f32 {
    assert_eq!(a.len(), b.len(), "row count changed");
    let mut delta = 0.0f32;
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.method, rb.method, "row labels changed");
        let pairs = |x: &EvalMetrics, y: &EvalMetrics| {
            if all_metrics {
                vec![(x.accuracy, y.accuracy), (x.precision, y.precision), (x.recall, y.recall), (x.f1, y.f1)]
            } else {
                vec![(x.accuracy, y.accuracy)]
            }
        };
        for (x, y) in pairs(&ra.prediction, &rb.prediction) {
            delta = delta.max((x - y).abs());
        }
        match (&ra.inference, &rb.inference) {
            (Some(x), Some(y)) => {
                for (x, y) in pairs(x, y) {
                    delta = delta.max((x - y).abs());
                }
            }
            (None, None) => {}
            _ => panic!("inference column presence changed for {}", ra.method),
        }
    }
    delta
}

// ---------------------------------------------------------------------------
// posterior normalisation
// ---------------------------------------------------------------------------

fn check_posterior_normalisation(task: TaskKind) {
    let dataset = dataset_of(task);
    let ctx = context_of(&dataset);
    let view = dataset.annotation_view();
    let registry = MethodRegistry::standard();
    let mut with_posteriors = Vec::new();
    for method in registry.supporting(task) {
        let descriptor = method.descriptor();
        let Some(posteriors) = method.infer_posteriors(&dataset, &ctx) else {
            // only the Gold upper bound (which consumes the truth) may opt
            // out; the crowd-layer variants and DL-DN read out softmax
            // proxies, so a `None` from them is a silently lost invariant
            assert!(
                matches!(descriptor.family, Family::Gold),
                "{} ({:?}) must expose its truth posterior",
                descriptor.name,
                descriptor.family
            );
            continue;
        };
        assert_eq!(posteriors.len(), view.num_units(), "{}: one posterior row per unit", descriptor.name);
        for (u, row) in posteriors.iter().enumerate() {
            assert_eq!(row.len(), dataset.num_classes, "{}: row {u} has wrong arity", descriptor.name);
            for &p in row {
                assert!((-1e-6..=1.0 + 1e-6).contains(&p), "{}: entry {p} out of [0,1] in row {u}", descriptor.name);
            }
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "{}: row {u} sums to {sum}, expected 1", descriptor.name);
        }
        with_posteriors.push(descriptor.name);
    }
    assert!(with_posteriors.len() >= 15, "expected all but Gold to expose posteriors, got {with_posteriors:?}");
    assert!(
        with_posteriors.iter().any(|n| n.starts_with("cl-")) && with_posteriors.iter().any(|n| n.starts_with("dl-")),
        "crowd-layer and DL-DN posteriors must be covered, got {with_posteriors:?}"
    );
}

#[test]
fn posteriors_are_normalised_classification() {
    check_posterior_normalisation(TaskKind::Classification);
}

#[test]
fn posteriors_are_normalised_tagging() {
    check_posterior_normalisation(TaskKind::SequenceTagging);
}

// ---------------------------------------------------------------------------
// annotator-ID permutation invariance
// ---------------------------------------------------------------------------

fn check_annotator_permutation_invariance(task: TaskKind) {
    let dataset = dataset_of(task);
    let ctx = context_of(&dataset);
    // reversal: every annotator id changes
    let perm: Vec<usize> = (0..dataset.num_annotators).rev().collect();
    let permuted = dataset.with_permuted_annotators(&perm);
    let registry = MethodRegistry::standard();
    let baseline = baseline_rows(task);
    let permuted_rows = run_all(&registry, &permuted, &ctx);
    assert_eq!(baseline.len(), permuted_rows.len());
    for ((name, base), (pname, perm_rows)) in baseline.iter().zip(&permuted_rows) {
        assert_eq!(name, pname);
        assert_eq!(row_bits(base), row_bits(perm_rows), "{name}: metrics changed under annotator renumbering");
    }
    // aggregation posteriors are invariant too (checked for the cheap,
    // training-free families)
    for method in registry.family(Family::TruthInference) {
        if !method.descriptor().supports(task) {
            continue;
        }
        let a = method.infer_posteriors(&dataset, &ctx).expect("truth methods expose posteriors");
        let b = method.infer_posteriors(&permuted, &ctx).expect("truth methods expose posteriors");
        assert_eq!(a.len(), b.len());
        for (u, (ra, rb)) in a.iter().zip(&b).enumerate() {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: posterior row {u} changed under annotator renumbering",
                    method.descriptor().name
                );
            }
        }
    }
}

#[test]
fn annotator_permutation_invariance_classification() {
    check_annotator_permutation_invariance(TaskKind::Classification);
}

#[test]
fn annotator_permutation_invariance_tagging() {
    check_annotator_permutation_invariance(TaskKind::SequenceTagging);
}

// ---------------------------------------------------------------------------
// class-relabeling equivariance
// ---------------------------------------------------------------------------

/// Per-family tolerance on metric drift under class relabeling.
/// Aggregation-only methods treat classes symmetrically, so their metrics
/// move only through argmax tie-breaks and float re-association (tiny).
/// Methods that *train a network* are not exactly class-symmetric — the
/// random initialisation assigns different weights to each output unit —
/// so at this micro scale their metrics may drift; the bound still catches
/// any hard-coded class index, which shifts metrics massively.
fn relabel_tolerance(family: Family) -> f32 {
    match family {
        Family::TruthInference => 5e-2,
        _ => 0.35,
    }
}

fn check_class_relabeling_equivariance(task: TaskKind, perm: &[usize]) {
    let dataset = dataset_of(task);
    let ctx = context_of(&dataset);
    let relabeled = dataset.with_relabeled_classes(perm);
    assert!(relabeled.validate().is_ok());
    let registry = MethodRegistry::standard();
    let baseline = baseline_rows(task);
    let relabeled_rows = run_all(&registry, &relabeled, &ctx);
    for ((name, base), (rname, rows)) in baseline.iter().zip(&relabeled_rows) {
        assert_eq!(name, rname);
        let family = registry.get(name).expect("registered").descriptor().family;
        let delta = max_metric_delta(base, rows, family == Family::TruthInference);
        assert!(
            delta <= relabel_tolerance(family),
            "{name} ({family}): metrics drifted {delta} under class relabeling"
        );
    }
}

#[test]
fn class_relabeling_equivariance_classification() {
    // swap NEG <-> POS everywhere
    check_class_relabeling_equivariance(TaskKind::Classification, &[1, 0]);
}

#[test]
fn class_relabeling_equivariance_tagging() {
    // swap the PER and LOC entity types (B and I tags pairwise); O and the
    // other types stay put, so BIO structure is preserved
    check_class_relabeling_equivariance(TaskKind::SequenceTagging, &[0, 3, 4, 1, 2, 5, 6, 7, 8]);
}

// ---------------------------------------------------------------------------
// bitwise seed determinism
// ---------------------------------------------------------------------------

fn check_seed_determinism(task: TaskKind) {
    let dataset = dataset_of(task);
    let ctx = context_of(&dataset);
    let registry = MethodRegistry::standard();
    let baseline = baseline_rows(task);
    let rerun = run_all(&registry, &dataset, &ctx);
    for ((name, base), (rname, rows)) in baseline.iter().zip(&rerun) {
        assert_eq!(name, rname);
        assert_eq!(row_bits(base), row_bits(rows), "{name}: two runs under the same seed disagree");
    }
}

#[test]
fn seed_determinism_is_bitwise_classification() {
    check_seed_determinism(TaskKind::Classification);
}

#[test]
fn seed_determinism_is_bitwise_tagging() {
    check_seed_determinism(TaskKind::SequenceTagging);
}

// ---------------------------------------------------------------------------
// temporal scenarios: the permutation / relabeling / determinism invariants
// must survive drifting annotators and difficulty-conditioned error
// ---------------------------------------------------------------------------

/// Runs the three metamorphic invariants on one temporal scenario: bitwise
/// seed determinism, bitwise annotator-renumbering invariance and bounded
/// class-relabeling drift.  Temporal corruption is keyed by each
/// annotator's stream position and each instance's latent difficulty —
/// both of which renumbering and relabeling must leave untouched.
fn check_temporal_invariants(config: &ScenarioConfig, class_perm: &[usize]) {
    let dataset = generate_scenario(config);
    let ctx = context_of(&dataset);
    let registry = MethodRegistry::standard();
    let baseline = run_all(&registry, &dataset, &ctx);

    // bitwise seed determinism
    let rerun = run_all(&registry, &dataset, &ctx);
    for ((name, base), (rname, rows)) in baseline.iter().zip(&rerun) {
        assert_eq!(name, rname);
        assert_eq!(row_bits(base), row_bits(rows), "{}/{name}: two runs under the same seed disagree", config.name);
    }

    // bitwise annotator-renumbering invariance
    let perm: Vec<usize> = (0..dataset.num_annotators).rev().collect();
    let permuted_rows = run_all(&registry, &dataset.with_permuted_annotators(&perm), &ctx);
    for ((name, base), (pname, rows)) in baseline.iter().zip(&permuted_rows) {
        assert_eq!(name, pname);
        assert_eq!(
            row_bits(base),
            row_bits(rows),
            "{}/{name}: metrics changed under annotator renumbering",
            config.name
        );
    }

    // bounded class-relabeling drift (same per-family tolerances as the
    // static scenarios)
    let relabeled = dataset.with_relabeled_classes(class_perm);
    assert!(relabeled.validate().is_ok());
    let relabeled_rows = run_all(&registry, &relabeled, &ctx);
    for ((name, base), (rname, rows)) in baseline.iter().zip(&relabeled_rows) {
        assert_eq!(name, rname);
        let family = registry.get(name).expect("registered").descriptor().family;
        let delta = max_metric_delta(base, rows, family == Family::TruthInference);
        assert!(
            delta <= relabel_tolerance(family),
            "{}/{name} ({family}): metrics drifted {delta} under class relabeling",
            config.name
        );
    }
}

#[test]
fn invariants_hold_on_a_drifted_scenario() {
    use lncl_crowd::scenario::DriftSchedule;
    let config = property_config(TaskKind::Classification)
        .named("props-sent-drift")
        .with_drift(DriftSchedule::StepChange { at: 0.4, level: 0.8 });
    check_temporal_invariants(&config, &[1, 0]);
}

#[test]
fn invariants_hold_on_a_difficulty_conditioned_scenario() {
    use lncl_crowd::scenario::DifficultyModel;
    let config = property_config(TaskKind::SequenceTagging)
        .named("props-ner-difficulty")
        .with_difficulty(DifficultyModel { strength: 0.8, concentration: 1.0 });
    check_temporal_invariants(&config, &[0, 3, 4, 1, 2, 5, 6, 7, 8]);
}

// ---------------------------------------------------------------------------
// redundancy monotonicity and spammer dilution (aggregation quality)
// ---------------------------------------------------------------------------

fn inference_accuracy(registry: &MethodRegistry, name: &str, dataset: &CrowdDataset, ctx: &RunContext) -> f32 {
    let rows = registry.run(name, dataset, ctx).expect("registered method");
    rows[0].inference.expect("truth methods report inference metrics").accuracy
}

#[test]
fn mv_and_ds_accuracy_monotone_in_redundancy_on_clean_pools() {
    let registry = MethodRegistry::standard();
    let accuracies: Vec<(usize, f32, f32)> = [1usize, 3, 5, 7]
        .iter()
        .map(|&r| {
            let config = ScenarioConfig::classification("redundancy")
                .with_sizes(400, 10, 10)
                .with_annotators(10)
                .with_redundancy(r, r)
                .with_propensity(PropensityProfile::Uniform)
                .with_seed(SEED);
            let dataset = generate_scenario(&config);
            let ctx = context_of(&dataset);
            let mv = inference_accuracy(&registry, "mv", &dataset, &ctx);
            let ds = inference_accuracy(&registry, "dawid-skene", &dataset, &ctx);
            (r, mv, ds)
        })
        .collect();
    for window in accuracies.windows(2) {
        let (r0, mv0, ds0) = window[0];
        let (r1, mv1, ds1) = window[1];
        assert!(mv1 >= mv0 - 0.02, "MV accuracy not monotone in redundancy: r{r0}={mv0}, r{r1}={mv1}");
        assert!(ds1 >= ds0 - 0.02, "DS accuracy not monotone in redundancy: r{r0}={ds0}, r{r1}={ds1}");
    }
    let (_, mv_max, ds_max) = accuracies[accuracies.len() - 1];
    assert!(mv_max > 0.93, "heavy redundancy should nearly recover truth (MV {mv_max})");
    assert!(ds_max > 0.93, "heavy redundancy should nearly recover truth (DS {ds_max})");
}

#[test]
fn spammer_dilution_is_bounded_for_confusion_aware_methods() {
    let registry = MethodRegistry::standard();
    let base = ScenarioConfig::classification("dilution")
        .with_sizes(400, 10, 10)
        .with_annotators(12)
        .with_redundancy(4, 6)
        .with_propensity(PropensityProfile::Uniform)
        .with_seed(SEED);
    let clean = generate_scenario(&base.clone().with_mix(vec![(Archetype::Reliable { accuracy: 0.8 }, 1.0)]));
    let spammed = generate_scenario(
        &base.with_mix(vec![(Archetype::Reliable { accuracy: 0.8 }, 0.65), (Archetype::Spammer, 0.35)]),
    );
    let ctx = context_of(&clean);
    let ds_clean = inference_accuracy(&registry, "dawid-skene", &clean, &ctx);
    let ds_spam = inference_accuracy(&registry, "dawid-skene", &spammed, &ctx);
    let mv_spam = inference_accuracy(&registry, "mv", &spammed, &ctx);
    // a third of the pool spamming uniformly costs DS only a bounded slice
    // of accuracy: the confusion model learns to discount them …
    assert!(
        ds_spam >= ds_clean - 0.08,
        "spammer dilution should be bounded for DS: clean {ds_clean}, spammed {ds_spam}"
    );
    // … which majority voting cannot do
    assert!(ds_spam >= mv_spam - 0.01, "confusion-aware DS should not trail MV under spam: DS {ds_spam}, MV {mv_spam}");
}
