//! End-to-end integration test on the NER task: the full pipeline (synthetic
//! corpus → Logic-LNCL with transition rules → strict span evaluation) runs
//! and produces coherent metrics.

use lncl_crowd::datasets::{generate_ner, NerDatasetConfig};
use lncl_nn::models::{NerConvGru, NerConvGruConfig};
use lncl_tensor::TensorRng;
use logic_lncl::ablation::paper_rules;
use logic_lncl::predict::PredictionMode;
use logic_lncl::{ImitationSchedule, LogicLncl, MStepObjective, TrainConfig};

#[test]
fn logic_lncl_end_to_end_ner() {
    let dataset = generate_ner(&NerDatasetConfig {
        train_size: 150,
        dev_size: 50,
        test_size: 50,
        num_annotators: 12,
        ..NerDatasetConfig::default()
    });
    let mut rng = TensorRng::seed_from_u64(4);
    let model = NerConvGru::new(
        NerConvGruConfig {
            vocab_size: dataset.vocab_size(),
            embedding_dim: 12,
            conv_window: 3,
            conv_features: 16,
            gru_hidden: 12,
            dropout_keep: 0.7,
            num_classes: dataset.num_classes,
        },
        &mut rng,
    );
    let mut config = TrainConfig::fast(6);
    config.imitation = ImitationSchedule::ner_paper();
    config.objective = MStepObjective::AnnotationWeighted;

    let mut trainer = LogicLncl::new(model, &dataset, paper_rules(&dataset), config);
    let report = trainer.train(&dataset);

    // the inferred q_f must recover spans far better than chance
    assert!(report.inference.f1 > 0.5, "inference span F1 {}", report.inference.f1);
    assert!(report.inference.accuracy > 0.8, "inference token accuracy {}", report.inference.accuracy);

    // predictions are well-formed for every test sentence
    let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
    assert!(student.accuracy > 0.5, "student token accuracy {}", student.accuracy);
    assert!(
        teacher.accuracy >= student.accuracy - 0.05,
        "teacher should not collapse: {} vs {}",
        teacher.accuracy,
        student.accuracy
    );
    assert!((0.0..=1.0).contains(&teacher.f1));
}
