//! End-to-end integration test on the sentiment task: Logic-LNCL must beat
//! majority voting on inference and produce sensible annotator estimates.

use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::metrics::crowd_label_accuracy;
use lncl_crowd::truth::{MajorityVote, TruthInference};
use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
use lncl_tensor::TensorRng;
use logic_lncl::ablation::paper_rules;
use logic_lncl::predict::PredictionMode;
use logic_lncl::{LogicLncl, TrainConfig};

#[test]
fn logic_lncl_end_to_end_sentiment() {
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 500,
        dev_size: 150,
        test_size: 150,
        num_annotators: 25,
        ..SentimentDatasetConfig::default()
    });
    let mut rng = TensorRng::seed_from_u64(3);
    let model = SentimentCnn::new(
        SentimentCnnConfig {
            vocab_size: dataset.vocab_size(),
            embedding_dim: 16,
            windows: vec![2, 3],
            filters_per_window: 8,
            dropout_keep: 0.7,
            num_classes: 2,
        },
        &mut rng,
    );
    let mut trainer =
        LogicLncl::builder(model).rules(paper_rules(&dataset)).config(TrainConfig::fast(14)).build(&dataset);
    let report = trainer.train(&dataset);

    // inference must beat both the raw crowd labels and majority voting
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view).accuracy(&view.gold);
    assert!(report.inference.accuracy > crowd_label_accuracy(&dataset));
    assert!(
        report.inference.accuracy >= mv - 0.01,
        "Logic-LNCL inference {} should not lose to MV {mv}",
        report.inference.accuracy
    );

    // prediction must clearly beat chance, and the teacher must stay a valid predictor
    let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
    assert!(student.accuracy > 0.6, "student accuracy {}", student.accuracy);
    assert!(teacher.accuracy > 0.6, "teacher accuracy {}", teacher.accuracy);

    // estimated reliabilities stay in [0, 1]
    assert!(trainer.annotators.reliabilities().iter().all(|&r| (0.0..=1.0).contains(&r)));
}
