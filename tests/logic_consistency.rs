//! Cross-crate integration tests of the logic machinery: PSL projection,
//! sentiment but-rule and NER transition rules working against the real
//! datasets and classifiers.

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_logic::rules::ner_transition::ner_transition_rules;
use lncl_logic::rules::sentiment_but::SentimentContrastRule;
use lncl_logic::{project_distribution, project_sequence};
use lncl_nn::models::{InstanceClassifier, SentimentCnn, SentimentCnnConfig};
use lncl_tensor::TensorRng;
use logic_lncl::ablation::paper_rules;
use logic_lncl::distill::{infer_qb, interpolate_qf, TaskRules};

#[test]
fn but_rule_grounds_on_generated_but_sentences() {
    let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    let but = dataset.but_token.unwrap();
    let rule = SentimentContrastRule::but_rule(but);
    let mut grounded = 0usize;
    for inst in &dataset.train {
        if inst.tokens.contains(&but) {
            assert!(rule.clause_b(&inst.tokens).is_some());
            grounded += 1;
        }
    }
    assert!(grounded > 10, "expected a reasonable number of but-sentences, got {grounded}");
}

#[test]
fn qb_projection_with_live_classifier_is_a_distribution() {
    let dataset = generate_sentiment(&SentimentDatasetConfig::tiny());
    let mut rng = TensorRng::seed_from_u64(0);
    let model =
        SentimentCnn::new(SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() }, &mut rng);
    let rules = paper_rules(&dataset);
    let clause = |tokens: &[usize]| model.predict_proba(tokens).row(0).to_vec();
    for inst in dataset.train.iter().take(40) {
        let qa = lncl_tensor::Matrix::row_vector(&[0.5, 0.5]);
        let qb = infer_qb(&qa, &inst.tokens, &rules, 5.0, &clause);
        assert_eq!(qb.rows(), 1);
        assert!((qb.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let qf = interpolate_qf(&qa, &qb, 0.7);
        assert!((qf.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn ner_projection_reduces_invalid_bio_transitions() {
    let dataset = generate_ner(&NerDatasetConfig::tiny());
    let rules = ner_transition_rules(0.8, 0.2);
    // count O -> I-* argmax transitions before/after projection on noisy posteriors
    let mut rng = TensorRng::seed_from_u64(3);
    let mut invalid_before = 0usize;
    let mut invalid_after = 0usize;
    for inst in dataset.train.iter().take(60) {
        let qa: Vec<Vec<f32>> = inst.gold.iter().map(|_| rng.dirichlet(9, 0.5)).collect();
        let qb = project_sequence(&qa, &rules, 5.0);
        let count_invalid = |q: &[Vec<f32>]| {
            let labels: Vec<usize> = q.iter().map(|p| lncl_tensor::stats::argmax(p)).collect();
            labels
                .windows(2)
                .filter(|w| {
                    let (prev, cur) = (w[0], w[1]);
                    cur != 0 && cur % 2 == 0 && prev != cur && prev != cur - 1
                })
                .count()
        };
        invalid_before += count_invalid(&qa);
        invalid_after += count_invalid(&qb);
    }
    assert!(
        invalid_after < invalid_before,
        "projection should reduce invalid BIO transitions: {invalid_before} -> {invalid_after}"
    );
}

#[test]
fn rule_projection_respects_regularisation_strength() {
    let qa = vec![0.7f32, 0.3];
    let weak = project_distribution(&qa, &[0.8, 0.0], 0.5);
    let strong = project_distribution(&qa, &[0.8, 0.0], 8.0);
    assert!(strong[0] < weak[0]);
    assert!(weak[0] < qa[0]);
}

#[test]
fn task_rules_describe_is_informative() {
    let sentiment = generate_sentiment(&SentimentDatasetConfig::tiny());
    let ner = generate_ner(&NerDatasetConfig::tiny());
    assert!(paper_rules(&sentiment).describe().contains("A-but-B"));
    assert!(paper_rules(&ner).describe().contains("ner-transitions"));
    assert!(TaskRules::None.is_none());
}
