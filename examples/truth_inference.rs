//! Truth-inference playground: runs every aggregation baseline in the
//! workspace on the same synthetic crowd data and prints their inference
//! accuracy, mirroring the bottom blocks of Tables II and III.
//!
//! Run with: `cargo run --release --example truth_inference`

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_crowd::metrics::span_f1;
use lncl_crowd::truth::*;

fn main() {
    // classification
    let sentiment = generate_sentiment(&SentimentDatasetConfig {
        train_size: 800,
        num_annotators: 40,
        ..SentimentDatasetConfig::default()
    });
    let view = sentiment.annotation_view();
    println!("Sentiment (binary classification), {} units:", view.num_units());
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(MajorityVote),
        Box::new(DawidSkene::default()),
        Box::new(Glad::default()),
        Box::new(Ibcc::default()),
        Box::new(Pm::default()),
        Box::new(Catd::default()),
    ];
    for m in &methods {
        println!("  {:<12} accuracy = {:.3}", m.name(), m.infer(&view).accuracy(&view.gold));
    }

    // sequence tagging
    let ner = generate_ner(&NerDatasetConfig { train_size: 300, num_annotators: 20, ..NerDatasetConfig::default() });
    let view = ner.annotation_view();
    let gold: Vec<Vec<usize>> = ner.train.iter().map(|i| i.gold.clone()).collect();
    println!("NER (9-class BIO tagging), {} sentences:", ner.train.len());
    let methods: Vec<Box<dyn TruthInference>> = vec![
        Box::new(MajorityVote),
        Box::new(DawidSkene::default()),
        Box::new(Ibcc::default()),
        Box::new(HmmCrowd::default()),
        Box::new(BscSeq::default()),
    ];
    for m in &methods {
        let est = m.infer(&view);
        let f1 = span_f1(&est.hard_by_instance(&view), &gold).f1;
        println!("  {:<12} strict span F1 = {:.3}", m.name(), f1);
    }
}
