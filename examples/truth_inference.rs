//! Truth-inference playground: enumerates the `Family::TruthInference`
//! block of the `MethodRegistry` on the same synthetic crowd data and
//! prints each method's inference quality, mirroring the bottom blocks of
//! Tables II and III — no per-method wiring, just a loop over descriptors.
//!
//! Run with: `cargo run --release --example truth_inference`

use lncl_crowd::datasets::{generate_ner, generate_sentiment, NerDatasetConfig, SentimentDatasetConfig};
use lncl_crowd::CrowdDataset;
use logic_lncl::method::{Family, MethodRegistry, RunContext};
use logic_lncl::TrainConfig;

fn run_block(registry: &MethodRegistry, dataset: &CrowdDataset, metric: &str) {
    let ctx = RunContext::for_dataset(dataset, TrainConfig::fast(1));
    for method in registry.family(Family::TruthInference) {
        let descriptor = method.descriptor();
        if !descriptor.supports(dataset.task) {
            continue;
        }
        for row in method.run(dataset, &ctx) {
            let m = row.inference.expect("truth-inference methods report inference metrics");
            let value = if metric == "accuracy" { m.accuracy } else { m.f1 };
            println!("  {:<12} ({:<10}) {metric} = {value:.3}", row.method, descriptor.name);
        }
    }
}

fn main() {
    let registry = MethodRegistry::standard();

    // classification
    let sentiment = generate_sentiment(&SentimentDatasetConfig {
        train_size: 800,
        num_annotators: 40,
        ..SentimentDatasetConfig::default()
    });
    println!("Sentiment (binary classification), {} units:", sentiment.annotation_view().num_units());
    run_block(&registry, &sentiment, "accuracy");

    // sequence tagging
    let ner = generate_ner(&NerDatasetConfig { train_size: 300, num_annotators: 20, ..NerDatasetConfig::default() });
    println!("NER (9-class BIO tagging), {} sentences:", ner.train.len());
    run_block(&registry, &ner, "span F1");
}
