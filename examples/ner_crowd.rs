//! NER scenario: trains the convolution+GRU tagger from noisy crowd BIO
//! labels with the paper's transition rules (Eq. 18/19) and reports strict
//! span-level metrics, mirroring Table III at small scale.  Logic-LNCL and
//! the sequence-aware aggregation baselines all run through the
//! `MethodRegistry`.
//!
//! Run with: `cargo run --release --example ner_crowd`

use lncl_crowd::datasets::{generate_ner, NerDatasetConfig};
use lncl_crowd::truth::{MajorityVote, TruthInference};
use logic_lncl::method::{MethodRegistry, RunContext};
use logic_lncl::{ImitationSchedule, MStepObjective, TrainConfig};

fn main() {
    let dataset = generate_ner(&NerDatasetConfig {
        train_size: 300,
        dev_size: 100,
        test_size: 100,
        num_annotators: 20,
        ..NerDatasetConfig::default()
    });
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view);
    println!("majority-voting token accuracy on the training split: {:.3}", mv.accuracy(&view.gold));

    let config = TrainConfig::builder()
        .epochs(10)
        .seed(5)
        .imitation(ImitationSchedule::ner_paper())
        .objective(MStepObjective::AnnotationWeighted)
        .build();
    let ctx = RunContext::for_dataset(&dataset, config);
    let registry = MethodRegistry::standard();

    println!("{:<24} {:>10} {:>7} {:>7} {:>7}", "method", "split", "P", "R", "F1");
    for key in ["hmm-crowd", "bsc-seq"] {
        let method = registry.get(key).expect("registered method");
        for row in method.run(&dataset, &ctx) {
            // aggregation-only methods report training-split inference quality
            let m = row.inference.expect("truth-inference methods report inference metrics");
            println!("{:<24} {:>10} {:>7.3} {:>7.3} {:>7.3}", row.method, "train", m.precision, m.recall, m.f1);
        }
    }
    for row in registry.run("logic-lncl", &dataset, &ctx).expect("registered method") {
        let m = row.prediction;
        println!("{:<24} {:>10} {:>7.3} {:>7.3} {:>7.3}", row.method, "test", m.precision, m.recall, m.f1);
    }
}
