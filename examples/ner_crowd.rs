//! NER scenario: trains the convolution+GRU tagger from noisy crowd BIO
//! labels with the paper's transition rules (Eq. 18/19) and reports strict
//! span-level metrics, mirroring Table III at small scale.
//!
//! Run with: `cargo run --release --example ner_crowd`

use lncl_crowd::datasets::{generate_ner, NerDatasetConfig};
use lncl_crowd::truth::{MajorityVote, TruthInference};
use lncl_nn::models::{NerConvGru, NerConvGruConfig};
use lncl_tensor::TensorRng;
use logic_lncl::ablation::paper_rules;
use logic_lncl::predict::PredictionMode;
use logic_lncl::{ImitationSchedule, LogicLncl, MStepObjective, TrainConfig};

fn main() {
    let dataset = generate_ner(&NerDatasetConfig {
        train_size: 300,
        dev_size: 100,
        test_size: 100,
        num_annotators: 20,
        ..NerDatasetConfig::default()
    });
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view);
    println!("majority-voting token accuracy on the training split: {:.3}", mv.accuracy(&view.gold));

    let mut rng = TensorRng::seed_from_u64(5);
    let model = NerConvGru::new(
        NerConvGruConfig { vocab_size: dataset.vocab_size(), num_classes: dataset.num_classes, ..Default::default() },
        &mut rng,
    );
    let mut config = TrainConfig::fast(10);
    config.imitation = ImitationSchedule::ner_paper();
    config.objective = MStepObjective::AnnotationWeighted;

    let mut trainer = LogicLncl::new(model, &dataset, paper_rules(&dataset), config);
    let report = trainer.train(&dataset);
    let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);

    println!("inference (training split): P={:.3} R={:.3} F1={:.3}", report.inference.precision, report.inference.recall, report.inference.f1);
    println!("student  (test split):      P={:.3} R={:.3} F1={:.3}", student.precision, student.recall, student.f1);
    println!("teacher  (test split):      P={:.3} R={:.3} F1={:.3}", teacher.precision, teacher.recall, teacher.f1);
}
