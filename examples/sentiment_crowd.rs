//! Sentiment-classification scenario: compares the two-stage MV-Classifier,
//! the EM baseline (AggNet) and Logic-LNCL on the same synthetic crowd data,
//! reproducing the qualitative ordering of Table II.
//!
//! Run with: `cargo run --release --example sentiment_crowd`

use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::truth::MajorityVote;
use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
use lncl_tensor::TensorRng;
use logic_lncl::baselines::two_stage::{inference_metrics_of, one_hot_targets, train_supervised};
use logic_lncl::predict::{evaluate_split, PredictionMode};
use logic_lncl::{ablation::paper_rules, LogicLncl, TaskRules, TrainConfig};
use lncl_crowd::truth::TruthInference;

fn model_for(dataset: &lncl_crowd::CrowdDataset, seed: u64) -> SentimentCnn {
    let mut rng = TensorRng::seed_from_u64(seed);
    SentimentCnn::new(SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() }, &mut rng)
}

fn main() {
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 800,
        dev_size: 250,
        test_size: 250,
        num_annotators: 40,
        ..SentimentDatasetConfig::default()
    });
    let config = TrainConfig::fast(12);

    // --- two-stage: MV + supervised training --------------------------------
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view);
    let hard = mv.hard_by_instance(&view);
    let mv_inference = inference_metrics_of(&hard, &dataset);
    let mut mv_model = model_for(&dataset, 1);
    train_supervised(&mut mv_model, &dataset, &one_hot_targets(&hard, dataset.num_classes), &config);
    let mv_test = evaluate_split(&mv_model, &dataset.test, dataset.task, PredictionMode::Student, &TaskRules::None, 0.0);

    // --- one-stage EM without rules (AggNet) ---------------------------------
    let mut aggnet = LogicLncl::new(model_for(&dataset, 2), &dataset, TaskRules::None, config.clone());
    let aggnet_report = aggnet.train(&dataset);
    let aggnet_test = aggnet.evaluate(&dataset.test, dataset.task, PredictionMode::Student);

    // --- Logic-LNCL with the A-but-B rule ------------------------------------
    let mut logic = LogicLncl::new(model_for(&dataset, 3), &dataset, paper_rules(&dataset), config);
    let logic_report = logic.train(&dataset);
    let student = logic.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = logic.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);

    println!("{:<22} {:>12} {:>12}", "method", "prediction", "inference");
    println!("{:<22} {:>12.3} {:>12.3}", "MV-Classifier", mv_test.accuracy, mv_inference.accuracy);
    println!("{:<22} {:>12.3} {:>12.3}", "AggNet (EM, no rules)", aggnet_test.accuracy, aggnet_report.inference.accuracy);
    println!("{:<22} {:>12.3} {:>12.3}", "Logic-LNCL-student", student.accuracy, logic_report.inference.accuracy);
    println!("{:<22} {:>12.3} {:>12.3}", "Logic-LNCL-teacher", teacher.accuracy, logic_report.inference.accuracy);
}
