//! Sentiment-classification scenario: compares the two-stage MV-Classifier,
//! the EM baseline (AggNet) and Logic-LNCL on the same synthetic crowd data,
//! reproducing the qualitative ordering of Table II.  Every method is
//! constructed by the `MethodRegistry` and run through the `CrowdMethod`
//! trait — the comparison is a data-driven loop over registry keys.
//!
//! Run with: `cargo run --release --example sentiment_crowd`

use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use logic_lncl::method::{MethodRegistry, RunContext};
use logic_lncl::TrainConfig;

fn main() {
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 800,
        dev_size: 250,
        test_size: 250,
        num_annotators: 40,
        ..SentimentDatasetConfig::default()
    });
    let config = TrainConfig::builder().epochs(12).build();
    let ctx = RunContext::for_dataset(&dataset, config);
    let registry = MethodRegistry::standard();

    println!("{:<22} {:>12} {:>12}", "method", "prediction", "inference");
    for key in ["mv-classifier", "aggnet", "logic-lncl"] {
        let method = registry.get(key).expect("registered method");
        for row in method.run(&dataset, &ctx) {
            let inference = row.inference.map(|m| format!("{:.3}", m.accuracy)).unwrap_or_else(|| "-".into());
            println!("{:<22} {:>12.3} {:>12}", row.method, row.prediction.accuracy, inference);
        }
    }
}
