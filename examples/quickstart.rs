//! Quickstart: generate a small synthetic crowdsourced sentiment dataset,
//! train Logic-LNCL through the builder API, and compare against a
//! registry-constructed baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use lncl_crowd::datasets::{generate_sentiment, SentimentDatasetConfig};
use lncl_crowd::truth::{MajorityVote, TruthInference};
use lncl_nn::models::{SentimentCnn, SentimentCnnConfig};
use lncl_tensor::TensorRng;
use logic_lncl::ablation::paper_rules;
use logic_lncl::method::{MethodRegistry, RunContext};
use logic_lncl::predict::PredictionMode;
use logic_lncl::{LogicLncl, TrainConfig};

fn main() {
    // 1. a synthetic stand-in for the Sentiment Polarity (MTurk) corpus
    let dataset = generate_sentiment(&SentimentDatasetConfig {
        train_size: 600,
        dev_size: 200,
        test_size: 200,
        num_annotators: 30,
        ..SentimentDatasetConfig::default()
    });
    println!(
        "dataset: {} train sentences, {} crowd labels from {} annotators ({:.2} labels/sentence)",
        dataset.train.len(),
        dataset.total_crowd_labels(),
        dataset.num_annotators,
        dataset.avg_annotations_per_instance()
    );

    // 2. how good is plain majority voting?
    let view = dataset.annotation_view();
    let mv = MajorityVote.infer(&view);
    println!("majority-voting inference accuracy on the training split: {:.3}", mv.accuracy(&view.gold));

    // 3. train Logic-LNCL (Algorithm 1) with the A-but-B rule, configured
    //    through the builder APIs
    let mut rng = TensorRng::seed_from_u64(1);
    let model =
        SentimentCnn::new(SentimentCnnConfig { vocab_size: dataset.vocab_size(), ..Default::default() }, &mut rng);
    let config = TrainConfig::builder().epochs(12).seed(1).build();
    let mut trainer = LogicLncl::builder(model).rules(paper_rules(&dataset)).config(config.clone()).build(&dataset);
    let report = trainer.train(&dataset);
    println!(
        "trained for {} epochs (best dev epoch {}), q_f inference accuracy {:.3}",
        report.epochs_run, report.best_epoch, report.inference.accuracy
    );

    // 4. evaluate both output modes on the held-out test split
    let student = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Student);
    let teacher = trainer.evaluate(&dataset.test, dataset.task, PredictionMode::Teacher);
    println!("Logic-LNCL-student test accuracy: {:.3}", student.accuracy);
    println!("Logic-LNCL-teacher test accuracy: {:.3}", teacher.accuracy);

    // 5. any compared method is one registry lookup away — here the
    //    MV-Classifier baseline, run through the same polymorphic API
    let registry = MethodRegistry::standard();
    let ctx = RunContext::for_dataset(&dataset, config);
    for row in registry.run("mv-classifier", &dataset, &ctx).expect("registered method") {
        println!("{}: test accuracy {:.3}", row.method, row.prediction.accuracy);
    }
}
